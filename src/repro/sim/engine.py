"""Vectorized flow-simulation engine (`repro.sim.engine`).

This is the fast counterpart of the scalar reference simulator in
:mod:`repro.sim.reference`, built in the same mold as :mod:`repro.kernels`: identical
semantics (pinned record-for-record by ``tests/sim/test_engine_equivalence.py``), all
hot per-event work as array operations instead of per-flow Python loops.

What changes relative to the reference:

* **Structure-of-arrays flow state** — remaining bytes, rates, per-flow path indices,
  flowlet byte counters and congestion flags live in NumPy arrays indexed by arrival
  position; the active set is an ascending index array, so per-event byte accounting,
  completion search and congestion-episode detection are single vectorized sweeps.
* **Pooled incidence, amended incrementally** — candidate router paths are resolved
  once per (source router, target router) pair into a pooled link-index array shared
  across runs (:class:`CandidateBank`, one per routing scheme), instead of per
  simulator instance; the per-event flow/link incidence itself is *persistent
  state* (:class:`repro.sim.allocstate.AllocationState`): amended O(delta) on
  arrival/completion/switch, never regathered, and fed to a progressive-filling
  allocator that works directly on the pooled entry arrays
  (:func:`repro.sim.allocstate._progressive_fill`) — no per-event ``scipy.sparse``
  matrix construction.  ``FlowSimConfig(allocator="incremental")`` additionally
  enables dirty-component refiltering: only the incidence components an event
  touched are refilled, untouched components keep their cached rates (max-min
  exact; float accumulation order differs from the reference, hence opt-in — see
  :mod:`repro.sim.allocstate`).
* **Batched path-switch evaluation** — flowlet/congestion switch *eligibility* is one
  boolean mask over the active set (segmented maxima of link utilisation over each
  flow's current path), and the eligible flows go through one batched selector call
  (:meth:`~repro.core.loadbalance.PathSelector.next_path_batch`) whose vectorized
  draws consume the selector RNG exactly as per-flow calls in arrival order would —
  no per-flow Python callbacks on the hot path.
* **Shared link space** — the directed-link index space of a topology is built once
  and cached on the topology's :class:`~repro.kernels.cache.GraphKernels` entry
  (:func:`link_space_for`), so the many cells of a figure sweep stop rebuilding it.

One deliberate non-change: the next completion is found by a fresh masked ``argmin``
over the active flows each event, not by a lazy-deletion heap.  The reference
recomputes ``now + remaining / max(rate, eps)`` from scratch every event, and exact
tie-breaking (which decides selector RNG consumption downstream) depends on the
floating-point value *at the current* ``now`` — a heap entry computed at an earlier
``now`` can differ in the last ulp and flip near-ties, breaking record-for-record
equivalence.  The argmin is a single vectorized op and is never the bottleneck.

:func:`simulate_many` is the batched entry point used by the simulation experiments
(Figures 2, 12, 14, 15, 16, 20): it runs a list of :class:`SimCell` cells in order,
sharing link spaces and candidate banks across cells.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.loadbalance import FlowletSelector, PathSelector
from repro.core.transport import TransportModel, ndp_transport
from repro.kernels.cache import kernels_for
from repro.kernels.dirtyregion import faulted_kernels
from repro.sim.allocstate import AllocationState, _progressive_fill, make_allocator  # noqa: F401  (re-export)
from repro.sim.faults import detour_router_path
from repro.sim.metrics import FlowRecord, SimulationResult
from repro.sim.reference import FlowLevelSimulator
from repro.sim.simconfig import FlowSimConfig
from repro.topologies.base import Topology
from repro.traffic.flows import Workload

#: Engine names accepted by the dispatching entry points.
ENGINES = ("engine", "reference")


# ------------------------------------------------------------------- link space
class LinkSpace:
    """The link index space of one topology.

    Links are numbered as in the reference simulator: both orientations of every
    router-router link first, then one injection link per endpoint, then one ejection
    link per endpoint (the NIC up/down links).
    """

    def __init__(self, topology: Topology) -> None:
        """Build the directed-edge index and injection/ejection bases."""
        self.directed = topology.directed_edges()
        self.edge_index: Dict[Tuple[int, int], int] = {e: i for i, e in enumerate(self.directed)}
        n_router_links = len(self.directed)
        self.num_endpoints = topology.num_endpoints
        self.inject_base = n_router_links
        self.eject_base = n_router_links + self.num_endpoints
        self.num_links = n_router_links + 2 * self.num_endpoints

    @property
    def nbytes(self) -> int:
        """Rough retained size (lets the shared cache account for this entry)."""
        # two tuple-of-two-ints keys plus dict slots per directed edge
        return 120 * len(self.directed)

    def links_of_path(self, path: Sequence[int]) -> List[int]:
        """Link indices of a router path (one per hop)."""
        index = self.edge_index
        return [index[(u, v)] for u, v in zip(path, path[1:])]


def link_space_for(topology: Topology) -> LinkSpace:
    """The (cached) :class:`LinkSpace` of ``topology``.

    Stored on the topology's :class:`~repro.kernels.cache.GraphKernels` entry, so all
    simulator instances over the same graph — including every cell of a
    :func:`simulate_many` sweep and every worker-local repeat — share one build.
    """
    key = ("sim_linkspace", topology.concentration, tuple(topology.endpoint_routers))
    return kernels_for(topology).aux(key, lambda: LinkSpace(topology))


# --------------------------------------------------------------- candidate bank
class CandidateEntry:
    """Pooled candidate paths of one (source router, target router) pair.

    ``seg_start[c]:seg_start[c]+seg_len[c]`` slices the bank's pool to the link
    indices of candidate ``c`` (router links only — injection/ejection links are
    per-flow and added by the engine); ``lengths`` is the per-candidate hop count
    exactly as the reference computes it (``max(1, len(path) - 1)``); ``max_links``
    is the full-path segment capacity (longest candidate plus injection/ejection) a
    flow on this pair reserves in the persistent allocation state, so any later
    path switch rewrites its segment in place.
    """

    __slots__ = ("bank", "num_candidates", "lengths", "lengths_float", "seg_start",
                 "seg_len", "max_links")

    def __init__(self, bank: "CandidateBank", lengths: List[int],
                 seg_start: np.ndarray, seg_len: np.ndarray) -> None:
        """Wrap one pair's pooled candidate segments."""
        self.bank = bank
        self.num_candidates = len(lengths)
        self.lengths = lengths
        self.lengths_float = np.asarray(lengths, dtype=np.float64)
        self.seg_start = seg_start
        self.seg_len = seg_len
        self.max_links = int(seg_len.max()) + 2


class CandidateBank:
    """Pooled candidate-path store for one routing scheme over one link space.

    The bank is the engine's *incrementally amended* incidence: every distinct router
    pair is resolved through ``routing.router_paths`` exactly once, its candidates'
    link lists are appended to one growing ``int64`` pool, and all later runs (other
    workloads, other cells of a sweep) reuse the pooled segments.  Same-router pairs
    get the reference's synthetic single candidate (empty link list, hop count 1).
    """

    def __init__(self, links: LinkSpace) -> None:
        """Create an empty bank over ``links``."""
        self.links = links
        self.pool = np.zeros(256, dtype=np.int64)
        self.used = 0
        self.entries: Dict[Tuple[int, int], CandidateEntry] = {}

    def _append(self, values: Sequence[int]) -> Tuple[int, int]:
        """Append one candidate's link list to the pool; return (start, length)."""
        need = self.used + len(values)
        if need > self.pool.size:
            grown = np.zeros(max(need, 2 * self.pool.size), dtype=np.int64)
            grown[:self.used] = self.pool[:self.used]
            self.pool = grown
        start = self.used
        self.pool[start:need] = values
        self.used = need
        return start, len(values)

    def entry(self, routing, source_router: int, target_router: int) -> CandidateEntry:
        """The pooled candidate entry for one router pair (resolved at most once)."""
        key = (source_router, target_router)
        cached = self.entries.get(key)
        if cached is not None:
            return cached
        if source_router == target_router:
            link_lists: List[List[int]] = [[]]
            lengths = [1]
        else:
            paths = routing.router_paths(source_router, target_router)
            if not paths:
                raise ValueError(f"routing scheme offers no path between routers {key}")
            link_lists = [self.links.links_of_path(p) for p in paths]
            lengths = [max(1, len(p) - 1) for p in paths]
        seg_start = np.empty(len(link_lists), dtype=np.int64)
        seg_len = np.empty(len(link_lists), dtype=np.int64)
        for c, link_list in enumerate(link_lists):
            seg_start[c], seg_len[c] = self._append(link_list)
        made = CandidateEntry(self, lengths, seg_start, seg_len)
        self.entries[key] = made
        return made


#: Per-routing-object candidate banks (weak keys: banks die with their routing).
_BANKS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def candidate_bank_for(routing, links: LinkSpace) -> CandidateBank:
    """The shared :class:`CandidateBank` of one routing scheme (per link space)."""
    try:
        bank = _BANKS.get(routing)
    except TypeError:  # unhashable / non-weakrefable routing: private bank
        return CandidateBank(links)
    if bank is None or bank.links is not links:
        bank = CandidateBank(links)
        _BANKS[routing] = bank
    return bank


def _segment_max(values: np.ndarray, pool: np.ndarray, starts: np.ndarray,
                 lens: np.ndarray) -> np.ndarray:
    """Per-segment maximum of ``values[pool[start:start+len]]`` (0.0 for empty)."""
    out = np.zeros(starts.size)
    nonzero = lens > 0
    if not nonzero.any():
        return out
    s, l = starts[nonzero], lens[nonzero]
    offsets = np.cumsum(l) - l
    gather = np.repeat(s - offsets, l) + np.arange(int(l.sum()))
    out[nonzero] = np.maximum.reduceat(values[pool[gather]], offsets)
    return out


# ------------------------------------------------------------------ fault state
class _SurvivorView:
    """Surviving-candidate view of one router pair under the current failed set."""

    __slots__ = ("survivors", "count", "sstart", "slen", "lengths", "lengths_float")

    def __init__(self, entry: CandidateEntry, survivors: np.ndarray) -> None:
        """Precompute the survivor-indexed segment arrays of ``entry``."""
        self.survivors = survivors            # ascending candidate indices
        self.count = int(survivors.size)
        self.sstart = entry.seg_start[survivors]
        self.slen = entry.seg_len[survivors]
        self.lengths = [entry.lengths[int(i)] for i in survivors]
        self.lengths_float = entry.lengths_float[survivors]


class _FaultRuntime:
    """Per-run fault state of the engine: failed set, survivor views, detours.

    Mirrors the reference spec (:mod:`repro.sim.faults`) with dirty-region
    bookkeeping: survivor views are cached per router pair and, on a fault epoch,
    only the views whose candidate links touch a *changed* edge are dropped
    (``invalidated``); untouched pairs keep their views across epochs (``reuses``
    vs ``refilters``).  Detour distances come from the dirty-region derived
    kernels (:func:`repro.kernels.dirtyregion.faulted_kernels`) — BFS distances
    are unique, so the backwalk builds exactly the reference's scalar-BFS detour.
    """

    def __init__(self, topology: Topology, links: LinkSpace, bank: CandidateBank) -> None:
        """Empty fault state over one topology / link space / candidate bank."""
        self.topology = topology
        self.adjacency = topology.adjacency()
        self.links = links
        self.bank = bank
        self.failed_edges: set = set()        # undirected (u < v) failed edges
        self.failed_links: set = set()        # both directed link indices per edge
        self.failed_mask = np.zeros(links.num_links, dtype=bool)
        self.views: Dict[Tuple[int, int], _SurvivorView] = {}
        self.link_pairs: Dict[int, List[Tuple[int, int]]] = {}
        self.registered: set = set()
        self.detour_rows: Dict[int, np.ndarray] = {}
        self.refilters = 0
        self.reuses = 0
        self.invalidated = 0

    def apply(self, deltas: Sequence[Tuple[str, Tuple[int, int]]]) -> bool:
        """Apply one epoch's fail/restore deltas; True iff the failed set changed."""
        changed: set = set()
        for action, edge in deltas:
            if action == "fail":
                if edge not in self.failed_edges:
                    self.failed_edges.add(edge)
                    changed.add(edge)
            elif edge in self.failed_edges:
                self.failed_edges.discard(edge)
                changed.add(edge)
        if not changed:
            return False
        self.detour_rows.clear()
        edge_index = self.links.edge_index
        self.failed_links.clear()
        self.failed_mask[:] = False
        for u, v in self.failed_edges:
            a, b = edge_index[(u, v)], edge_index[(v, u)]
            self.failed_links.add(a)
            self.failed_links.add(b)
            self.failed_mask[a] = self.failed_mask[b] = True
        # dirty-region invalidation: drop only the views a changed edge touches
        dirty = set()
        for u, v in changed:
            for link in (edge_index[(u, v)], edge_index[(v, u)]):
                dirty.update(self.link_pairs.get(link, ()))
        for key in dirty:
            if self.views.pop(key, None) is not None:
                self.invalidated += 1
        return True

    def _register(self, key: Tuple[int, int], entry: CandidateEntry) -> None:
        """Map every candidate link of ``key`` to the pair (once per pair)."""
        if key in self.registered:
            return
        self.registered.add(key)
        pool = self.bank.pool
        for c in range(entry.num_candidates):
            s, length = int(entry.seg_start[c]), int(entry.seg_len[c])
            for link in pool[s:s + length]:
                self.link_pairs.setdefault(int(link), []).append(key)

    def view(self, key: Tuple[int, int], entry: CandidateEntry) -> _SurvivorView:
        """The pair's survivor view under the current failed set (cached)."""
        cached = self.views.get(key)
        if cached is not None:
            self.reuses += 1
            return cached
        self._register(key, entry)
        pool = self.bank.pool
        mask = self.failed_mask
        survivors = np.fromiter(
            (c for c in range(entry.num_candidates)
             if not mask[pool[int(entry.seg_start[c]):
                              int(entry.seg_start[c]) + int(entry.seg_len[c])]].any()),
            dtype=np.int64)
        made = _SurvivorView(entry, survivors)
        self.refilters += 1
        self.views[key] = made
        return made

    def detour(self, rs: int, rt: int) -> Optional[List[int]]:
        """The deterministic detour router path rs -> rt on the surviving graph."""
        row = self.detour_rows.get(rs)
        if row is None:
            row = faulted_kernels(self.topology, self.failed_edges).distances_from(rs)
            self.detour_rows[rs] = row
        return detour_router_path(self.adjacency, self.failed_edges, rs, rt, row)


# ------------------------------------------------------------------ engine core
class EngineCore:
    """Mutable state plus per-event operations of one vectorized simulation run.

    Owns the structure-of-arrays flow state, the persistent allocation state, the
    fault runtime and the event counters of a single run.  Two drivers share it:

    * :meth:`FlowEngine.run` — the batch driver: ingests the whole (sorted)
      workload once, steps until every flow is admitted and finished, drains;
      record-for-record identical to the scalar reference simulator.
    * :class:`repro.sim.stream.StreamSimulator` — the streaming driver: ingests
      open-ended arrival chunks (:meth:`ensure_capacity` doubles the arrays),
      steps up to a horizon, and periodically renumbers live slots
      (:meth:`compact_slots`) so memory stays proportional to the *active* set.

    Slots are arrival positions.  The ``active`` array is ascending, and —
    because ingestion appends in start-time order and slot compaction renumbers
    order-preservingly — ascending slot order *is* arrival order: the invariant
    both the full allocator's float accumulation (``searchsorted`` relabelling in
    :func:`repro.sim.allocstate._full_fill`) and the selector RNG stream (batched
    calls consume draws in arrival order) rely on.
    """

    def __init__(self, sim: "FlowEngine", capacity: int,
                 sink: Callable[[FlowRecord], None]) -> None:
        """Bind one run's state to ``sim``'s stack; completed records go to ``sink``."""
        self.topology = sim.topology
        self.routing = sim.routing
        self.selector = sim.selector
        self.transport = sim.transport
        self.config = config = sim.config
        self.links = sim.links
        self.bank = sim.bank
        self.capacities = sim.capacities
        self.num_links = sim.num_links
        self.sink = sink
        self.line_rate = config.link_rate_bps / 8.0
        self.congestion_threshold = config.congestion_rate_fraction * self.line_rate
        self._routers: Optional[np.ndarray] = None
        self._remap: Optional[np.ndarray] = None

        capacity = max(int(capacity), 0)
        self.capacity = capacity
        self.count = 0          # flows ingested so far
        self.admit_idx = 0      # next slot to admit at its arrival event
        self.fid = np.zeros(capacity, dtype=np.int64)
        self.start = np.zeros(capacity)
        self.src = np.zeros(capacity, dtype=np.int64)
        self.dst = np.zeros(capacity, dtype=np.int64)
        self.size = np.zeros(capacity)
        self.src_router = np.zeros(capacity, dtype=np.int64)
        self.dst_router = np.zeros(capacity, dtype=np.int64)
        self.inj_link = np.zeros(capacity, dtype=np.int64)
        self.ej_link = np.zeros(capacity, dtype=np.int64)
        self.remaining = np.zeros(capacity)
        self.rate = np.zeros(capacity)
        self.bytes_since_switch = np.zeros(capacity)
        self.num_switches = np.zeros(capacity, dtype=np.int64)
        self.congestion_events = np.zeros(capacity, dtype=np.int64)
        self.currently_congested = np.zeros(capacity, dtype=bool)
        self.path_index = np.zeros(capacity, dtype=np.int64)
        self.num_candidates = np.zeros(capacity, dtype=np.int64)
        self.cand_start = np.zeros(capacity, dtype=np.int64)
        self.cand_len = np.zeros(capacity, dtype=np.int64)
        self.entries: List[Optional[CandidateEntry]] = [None] * capacity

        self.active = np.empty(0, dtype=np.int64)   # arrival positions, ascending
        self.now = 0.0
        self.events = 0
        # persistent incidence + rate allocator (full: reference-equivalent refill
        # over the persistent pool; incremental: dirty-component refiltering)
        self.alloc = make_allocator(config.allocator, capacity, self.num_links,
                                    self.capacities, self.line_rate)

        # ---- fault state (mirrors the reference spec; see repro.sim.faults)
        self.faults_on = config.faults is not None
        self.fault_epochs = config.faults.resolve(sim.topology) if self.faults_on else []
        self.fault_idx = 0
        self.fault_count = 0
        self.reroutes = 0
        self.stall_count = 0
        self.order_dirty = False
        if self.faults_on:
            self.stalled = np.zeros(capacity, dtype=bool)
            self.on_detour = np.zeros(capacity, dtype=bool)
            self.record_hops = np.full(capacity, -1, dtype=np.int64)  # detour hops
            self.faultrt: Optional[_FaultRuntime] = _FaultRuntime(
                sim.topology, self.links, self.bank)
        else:
            self.stalled = self.on_detour = self.record_hops = None
            self.faultrt = None

    # -------------------------------------------------------------- ingestion
    def set_mapping(self, mapping: Optional[Sequence[int]]) -> None:
        """Install the optional endpoint remap applied to every ingested flow."""
        self._remap = None if mapping is None else np.asarray(mapping, dtype=np.int64)

    def ensure_capacity(self, need: int) -> None:
        """Grow every slot-indexed array to hold ``need`` slots (amortized doubling)."""
        if need <= self.capacity:
            return
        new = max(need, 2 * self.capacity, 64)
        count = self.count
        for name in ("fid", "src", "dst", "src_router", "dst_router", "inj_link",
                     "ej_link", "num_switches", "congestion_events", "path_index",
                     "num_candidates", "cand_start", "cand_len"):
            old = getattr(self, name)
            arr = np.zeros(new, dtype=np.int64)
            arr[:count] = old[:count]
            setattr(self, name, arr)
        for name in ("start", "size", "remaining", "rate", "bytes_since_switch"):
            old = getattr(self, name)
            arr = np.zeros(new)
            arr[:count] = old[:count]
            setattr(self, name, arr)
        congested = np.zeros(new, dtype=bool)
        congested[:count] = self.currently_congested[:count]
        self.currently_congested = congested
        if self.faults_on:
            for name in ("stalled", "on_detour"):
                old = getattr(self, name)
                arr = np.zeros(new, dtype=bool)
                arr[:count] = old[:count]
                setattr(self, name, arr)
            hops = np.full(new, -1, dtype=np.int64)
            hops[:count] = self.record_hops[:count]
            self.record_hops = hops
        self.entries.extend([None] * (new - len(self.entries)))
        self.alloc.state.grow(new)
        self.capacity = new

    def ingest(self, flows: Sequence) -> None:
        """Append ``flows`` (start-time ordered) at the tail of the slot arrays."""
        k = len(flows)
        if k == 0:
            return
        base = self.count
        self.ensure_capacity(base + k)
        end = base + k
        start = np.fromiter((f.start_time for f in flows), dtype=np.float64, count=k)
        if (k > 1 and bool((np.diff(start) < 0).any())) \
                or (base and start[0] < self.start[base - 1]):
            raise ValueError("arrival stream must be ordered by start time")
        src = np.fromiter((f.source for f in flows), dtype=np.int64, count=k)
        dst = np.fromiter((f.destination for f in flows), dtype=np.int64, count=k)
        size = np.fromiter((f.size_bytes for f in flows), dtype=np.float64, count=k)
        if self._remap is not None:
            src, dst = self._remap[src], self._remap[dst]
        if src.min() < 0 or dst.min() < 0 or \
                max(src.max(), dst.max()) >= self.links.num_endpoints:
            raise ValueError("workload references an endpoint out of range")
        if self._routers is None:
            self._routers = self.topology.endpoint_router_array()
        self.fid[base:end] = np.fromiter((f.flow_id for f in flows),
                                         dtype=np.int64, count=k)
        self.start[base:end] = start
        self.src[base:end] = src
        self.dst[base:end] = dst
        self.size[base:end] = size
        self.src_router[base:end] = self._routers[src]
        self.dst_router[base:end] = self._routers[dst]
        self.inj_link[base:end] = self.links.inject_base + src
        self.ej_link[base:end] = self.links.eject_base + dst
        self.remaining[base:end] = size
        self.count = end

    def next_pending_start(self) -> float:
        """Start time of the earliest not-yet-admitted flow (inf if none)."""
        if self.admit_idx < self.count:
            return float(self.start[self.admit_idx])
        return np.inf

    # ------------------------------------------------------------- event step
    def step(self, until: float = np.inf, strict: bool = False) -> bool:
        """Process the earliest pending event (fault epoch, arrival or completion).

        Returns ``False`` — and consumes nothing — when no event is pending or
        the earliest one lies strictly beyond ``until``.  Events exactly at
        ``until`` run unless ``strict``: the streaming driver advances strictly
        below the next not-yet-ingested arrival's start, so that after the
        arrival is ingested the batch tie-break order (fault >= arrival >=
        completion at equal times) is reproduced exactly.  Tie-breaking matches
        the reference loop: fault epochs win time ties over arrivals, arrivals
        win over completions.
        """
        active = self.active
        config = self.config
        if active.size:
            horizon = self.now + self.remaining[active] \
                / np.maximum(self.rate[active], config.rate_epsilon)
            k = int(np.argmin(horizon))   # first minimum = earliest-arrived, as reference
            completion_time = float(horizon[k])
            completing: Optional[int] = int(active[k])
        else:
            completion_time, completing = np.inf, None
        next_arrival = self.next_pending_start()
        next_fault = (self.fault_epochs[self.fault_idx][0]
                      if self.fault_idx < len(self.fault_epochs) else np.inf)
        earliest = min(next_fault, next_arrival, completion_time)
        if earliest == np.inf or earliest > until or (strict and earliest >= until):
            return False
        self.events += 1
        if next_fault <= next_arrival and next_fault <= completion_time:
            # fault epochs win time ties over arrivals and completions
            self.advance_to(float(next_fault))
            self.now = float(next_fault)
            self.apply_fault_epoch(self.fault_epochs[self.fault_idx][1])
            self.fault_idx += 1
        elif next_arrival <= completion_time:
            self.advance_to(float(next_arrival))
            self.now = float(next_arrival)
            self.admit_pending()
        else:
            self.advance_to(completion_time)
            self.now = completion_time
            self.active = active[active != completing]
            if not (self.faults_on and self.stalled[completing]):
                self.alloc.remove(completing)
            self.sink(self.make_record(completing, self.now))
        if self.faults_on and self.faultrt.failed_links:
            self.maybe_switch_paths_faulted()
        else:
            self.maybe_switch_paths()
        self.recompute_rates()
        return True

    def advance_to(self, new_time: float) -> None:
        """Transfer bytes on all active flows up to ``new_time`` (vectorized)."""
        # byte accounting: same elementwise expressions as the reference loop
        dt = new_time - self.now
        active = self.active
        if dt <= 0 or active.size == 0:
            return
        remaining = self.remaining
        r = self.rate[active]
        transferred = np.where(np.isfinite(r), r * dt, remaining[active])
        np.minimum(transferred, remaining[active], out=transferred)
        remaining[active] -= transferred
        self.bytes_since_switch[active] += transferred

    def admit_pending(self) -> None:
        """Admit every ingested flow with ``start <= now`` (one arrival event)."""
        now = self.now
        bank, routing, selector = self.bank, self.routing, self.selector
        faultrt = self.faultrt
        src_router, dst_router = self.src_router, self.dst_router
        first_new = self.admit_idx
        while self.admit_idx < self.count and self.start[self.admit_idx] <= now:
            a = self.admit_idx
            self.admit_idx += 1
            entry = bank.entry(routing, int(src_router[a]), int(dst_router[a]))
            self.entries[a] = entry
            self.num_candidates[a] = entry.num_candidates
            if self.faults_on and faultrt.failed_links \
                    and src_router[a] != dst_router[a]:
                view = faultrt.view((int(src_router[a]), int(dst_router[a])), entry)
                if view.count:
                    pos = int(selector.initial_path(
                        int(self.fid[a]), view.count, path_lengths=view.lengths))
                    index = int(view.survivors[pos])
                else:
                    detour = faultrt.detour(int(src_router[a]), int(dst_router[a]))
                    if detour is not None:
                        hops = max(1, len(detour) - 1)
                        selector.initial_path(int(self.fid[a]), 1,
                                              path_lengths=[hops])
                        seg_s, seg_l = bank._append(self.links.links_of_path(detour))
                        self.path_index[a] = 0
                        self.on_detour[a] = True
                        self.record_hops[a] = hops
                        self.cand_start[a], self.cand_len[a] = seg_s, seg_l
                        self.alloc_add(a, seg_s, seg_l,
                                       max(entry.max_links, seg_l + 2))
                        continue
                    # stalled on arrival: no selector draw is consumed,
                    # no allocation; the flow waits for a restore
                    self.stall_count += 1
                    self.stalled[a] = True
                    self.path_index[a] = 0
                    self.cand_start[a] = entry.seg_start[0]
                    self.cand_len[a] = entry.seg_len[0]
                    continue
            else:
                index = selector.initial_path(int(self.fid[a]), entry.num_candidates,
                                              path_lengths=entry.lengths)
            self.path_index[a] = index
            self.cand_start[a] = entry.seg_start[index]
            self.cand_len[a] = entry.seg_len[index]
            mid = int(entry.seg_len[index])
            full_links = np.empty(mid + 2, dtype=np.int64)
            full_links[0] = self.inj_link[a]
            if mid:
                s = int(entry.seg_start[index])
                full_links[1:-1] = bank.pool[s:s + mid]
            full_links[-1] = self.ej_link[a]
            self.alloc.add(a, full_links, entry.max_links)
        self.active = np.concatenate([self.active,
                                      np.arange(first_new, self.admit_idx)])

    def recompute_rates(self) -> None:
        """Max-min fair rates + link utilisation + congestion-episode edges.

        The allocator refills from the persistent incidence (no per-event
        regather) and reports which slots it recomputed — all active ones for
        ``allocator="full"``, only the dirty components' members for
        ``allocator="incremental"``.  Congestion episodes are edge-triggered,
        and an untouched component's rates are unchanged by construction, so
        re-evaluating episodes exactly for the refilled slots is equivalent.
        """
        active = self.active
        alive = active if not self.faults_on else active[~self.stalled[active]]
        if alive.size == 0:
            self.alloc.idle()
            return
        refilled = self.alloc.recompute(alive, self.rate)
        if refilled.size:
            congested = self.rate[refilled] < self.congestion_threshold
            self.congestion_events[refilled] += \
                congested & ~self.currently_congested[refilled]
            self.currently_congested[refilled] = congested

    def maybe_switch_paths(self) -> None:
        """Flowlet/congestion path switching with one batched selector call."""
        active = self.active
        if active.size == 0:
            return
        num_candidates, cand_start, cand_len = \
            self.num_candidates, self.cand_start, self.cand_len
        bank, config = self.bank, self.config
        multi = active[num_candidates[active] > 1]
        if multi.size == 0:
            return
        current_congestion = _segment_max(self.alloc.link_util, bank.pool,
                                          cand_start[multi], cand_len[multi])
        eligible = multi[(self.bytes_since_switch[multi] >= config.flowlet_bytes)
                         | (current_congestion >= 1.0)]
        if eligible.size == 0:
            return
        # batched switch evaluation: per-candidate congestion for every eligible
        # flow in one segmented sweep, then one batched selector call whose RNG
        # consumption matches per-flow calls in arrival order exactly
        path_index = self.path_index
        flow_entries = [self.entries[int(a)] for a in eligible]
        seg_starts = np.concatenate([e.seg_start for e in flow_entries])
        seg_lens = np.concatenate([e.seg_len for e in flow_entries])
        counts = num_candidates[eligible]
        congestion_flat = _segment_max(self.alloc.link_util, bank.pool,
                                       seg_starts, seg_lens)
        width = int(counts.max())
        row_mask = np.arange(width) < counts[:, None]
        loads = np.full((eligible.size, width), np.inf)
        loads[row_mask] = congestion_flat
        lengths = np.full((eligible.size, width), np.inf)
        lengths[row_mask] = np.concatenate([e.lengths_float for e in flow_entries])
        new_index = self.selector.next_path_batch(self.fid[eligible],
                                                  path_index[eligible],
                                                  counts, loads, lengths)
        self.bytes_since_switch[eligible] = 0.0
        switched = new_index != path_index[eligible]
        path_index[eligible] = new_index
        self.num_switches[eligible[switched]] += 1
        flat = np.cumsum(counts) - counts + new_index
        cand_start[eligible] = seg_starts[flat]
        cand_len[eligible] = seg_lens[flat]
        changed = eligible[switched]
        if changed.size:
            # amend the persistent incidence: switched segments are rewritten
            # in place (capacity covers the longest candidate of the pair)
            self.alloc.switch(changed, self.inj_link[changed], self.ej_link[changed],
                              bank.pool, cand_start[changed], cand_len[changed])

    def maybe_switch_paths_faulted(self) -> None:
        """Faulted-mode switch evaluation: batch over the survivor views.

        Mirrors the reference's survivor-aware loop: stalled and detour flows
        never switch, a pair with at most one surviving candidate is skipped,
        and the batched selector call sees survivor-*position* indices, loads
        and lengths — consuming the RNG exactly as per-flow calls would.
        """
        active = self.active
        if active.size == 0:
            return
        faultrt, bank, config = self.faultrt, self.bank, self.config
        path_index, cand_start, cand_len = \
            self.path_index, self.cand_start, self.cand_len
        src_router, dst_router = self.src_router, self.dst_router
        cand = active[~self.stalled[active] & ~self.on_detour[active]
                      & (self.num_candidates[active] > 1)]
        if cand.size == 0:
            return
        views = [faultrt.view((int(src_router[a]), int(dst_router[a])),
                              self.entries[int(a)]) for a in cand]
        keep = np.fromiter((v.count > 1 for v in views), dtype=bool,
                           count=cand.size)
        cand = cand[keep]
        if cand.size == 0:
            return
        views = [v for v, k in zip(views, keep) if k]
        current_congestion = _segment_max(self.alloc.link_util, bank.pool,
                                          cand_start[cand], cand_len[cand])
        elig = (self.bytes_since_switch[cand] >= config.flowlet_bytes) \
            | (current_congestion >= 1.0)
        eligible = cand[elig]
        if eligible.size == 0:
            return
        views = [v for v, k in zip(views, elig) if k]
        seg_starts = np.concatenate([v.sstart for v in views])
        seg_lens = np.concatenate([v.slen for v in views])
        counts = np.fromiter((v.count for v in views), dtype=np.int64,
                             count=eligible.size)
        congestion_flat = _segment_max(self.alloc.link_util, bank.pool, seg_starts,
                                       seg_lens)
        width = int(counts.max())
        row_mask = np.arange(width) < counts[:, None]
        loads = np.full((eligible.size, width), np.inf)
        loads[row_mask] = congestion_flat
        lengths = np.full((eligible.size, width), np.inf)
        lengths[row_mask] = np.concatenate([v.lengths_float for v in views])
        currents = np.fromiter(
            (np.searchsorted(v.survivors, path_index[a])
             for v, a in zip(views, eligible)), dtype=np.int64,
            count=eligible.size)
        new_pos = self.selector.next_path_batch(self.fid[eligible], currents,
                                                counts, loads, lengths)
        self.bytes_since_switch[eligible] = 0.0
        new_index = np.fromiter(
            (v.survivors[p] for v, p in zip(views, new_pos)), dtype=np.int64,
            count=eligible.size)
        switched = new_index != path_index[eligible]
        path_index[eligible] = new_index
        self.num_switches[eligible[switched]] += 1
        flat = np.cumsum(counts) - counts + new_pos
        cand_start[eligible] = seg_starts[flat]
        cand_len[eligible] = seg_lens[flat]
        changed = eligible[switched]
        if changed.size:
            self.alloc.switch(changed, self.inj_link[changed], self.ej_link[changed],
                              bank.pool, cand_start[changed], cand_len[changed])

    # ------------------------------------------------------------ fault events
    def alloc_add(self, a: int, seg_s: int, seg_l: int, capacity: int) -> None:
        """(Re-)register slot ``a``'s full link segment with the allocator."""
        full = np.empty(seg_l + 2, dtype=np.int64)
        full[0] = self.inj_link[a]
        if seg_l:
            full[1:-1] = self.bank.pool[seg_s:seg_s + seg_l]
        full[-1] = self.ej_link[a]
        self.alloc.add(a, full, capacity)

    def place_flow(self, a: int) -> None:
        """Re-place one displaced flow (reference ``place``): survivors, else
        detour, else stall — with O(delta) allocation amendments."""
        bank, faultrt, selector = self.bank, self.faultrt, self.selector
        alloc = self.alloc
        rs, rt = int(self.src_router[a]), int(self.dst_router[a])
        entry = self.entries[a]
        old_len = int(self.cand_len[a])
        old_start = int(self.cand_start[a])
        # copy before any detour append: bank.pool may reallocate under us
        old_links = bank.pool[old_start:old_start + old_len].copy()
        was_stalled = bool(self.stalled[a])
        view = faultrt.view((rs, rt), entry)
        if view.count:
            pos = int(selector.initial_path(int(self.fid[a]), view.count,
                                            path_lengths=view.lengths))
            idx = int(view.survivors[pos])
            new_start, new_len = int(entry.seg_start[idx]), int(entry.seg_len[idx])
            self.path_index[a] = idx
            self.on_detour[a] = False
            self.record_hops[a] = -1
        else:
            detour = faultrt.detour(rs, rt)
            if detour is None:
                # Disconnected: stall in place, drop out of the allocation.
                if not was_stalled:
                    self.stalled[a] = True
                    self.rate[a] = 0.0
                    self.stall_count += 1
                    alloc.remove(a)
                return
            hops = max(1, len(detour) - 1)
            # the selector is still consulted (one candidate): RNG alignment
            selector.initial_path(int(self.fid[a]), 1, path_lengths=[hops])
            new_start, new_len = bank._append(self.links.links_of_path(detour))
            self.path_index[a] = 0
            self.on_detour[a] = True
            self.record_hops[a] = hops
        self.stalled[a] = False
        self.cand_start[a], self.cand_len[a] = new_start, new_len
        new_links = bank.pool[new_start:new_start + new_len]
        changed_path = new_len != old_len or bool((new_links != old_links).any())
        if was_stalled:
            self.alloc_add(a, new_start, new_len, max(entry.max_links, new_len + 2))
            self.order_dirty = True
        elif changed_path:
            if new_len + 2 <= int(alloc.state.seg_cap[a]):
                slot = np.array([a], dtype=np.int64)
                alloc.switch(slot, self.inj_link[slot], self.ej_link[slot],
                             bank.pool, self.cand_start[slot], self.cand_len[slot])
            else:   # detour longer than the reserved segment: move to the end
                alloc.remove(a)
                self.alloc_add(a, new_start, new_len,
                               max(entry.max_links, new_len + 2))
                self.order_dirty = True
        if changed_path:
            self.num_switches[a] += 1
            self.bytes_since_switch[a] = 0.0
            self.reroutes += 1

    def apply_fault_epoch(self, deltas: Sequence[Tuple[str, Tuple[int, int]]]) -> None:
        """Apply one epoch and displace affected flows in arrival order.

        The displacement loop is scalar on purpose: it consumes the selector
        RNG per displaced flow exactly as the reference's dict-order loop
        does.  Re-adds break the pool's ascending arrival order (which the
        full allocator's float accumulation follows), so the epoch ends with
        a compaction back to ascending order whenever one happened.
        """
        faultrt, bank = self.faultrt, self.bank
        self.fault_count += 1
        faultrt.apply(deltas)
        self.order_dirty = False
        for a in self.active:
            a = int(a)
            if self.src_router[a] == self.dst_router[a]:
                continue      # synthetic empty-link candidate: immune
            if self.stalled[a]:
                needs = True  # always retry: a restore may have reconnected
            else:
                s, length = int(self.cand_start[a]), int(self.cand_len[a])
                dead = bool(faultrt.failed_mask[bank.pool[s:s + length]].any())
                if self.on_detour[a]:
                    needs = dead or faultrt.view(
                        (int(self.src_router[a]), int(self.dst_router[a])),
                        self.entries[a]).count > 0
                else:
                    needs = dead
            if needs:
                self.place_flow(a)
        if self.order_dirty:
            self.alloc.state.compact(self.active[~self.stalled[self.active]])

    # ---------------------------------------------------------------- records
    def make_record(self, a: int, completion_time: float) -> FlowRecord:
        """Assemble one flow's record (RTT + transport startup, as reference)."""
        config = self.config
        entry = self.entries[a]
        if self.faults_on and self.record_hops[a] >= 0:
            hops = int(self.record_hops[a])
        else:
            hops = entry.lengths[int(self.path_index[a])]
        rtt = 2 * (hops * config.per_hop_latency + config.host_latency)
        startup = self.transport.startup_delay(float(self.size[a]), rtt,
                                               config.link_rate_bps)
        return FlowRecord(
            flow_id=int(self.fid[a]), source=int(self.src[a]),
            destination=int(self.dst[a]),
            size_bytes=float(self.size[a]), start_time=float(self.start[a]),
            completion_time=float(completion_time + rtt / 2 + startup),
            path_hops=hops, num_path_switches=int(self.num_switches[a]),
            congestion_events=int(self.congestion_events[a]))

    def drain_record(self, a: int) -> FlowRecord:
        """The record a still-active flow would get if drained right now
        (the ``max_events`` truncation path, same rate floor as the reference)."""
        a = int(a)
        horizon = self.now + self.remaining[a] / max(float(self.rate[a]),
                                                     self.config.rate_epsilon)
        return self.make_record(a, horizon)

    def meta(self) -> Dict[str, object]:
        """The run's meta dict (event/fault/allocator counters)."""
        meta: Dict[str, object] = {
            "topology": self.topology.name,
            "routing": getattr(self.routing, "name", type(self.routing).__name__),
            "transport": self.transport.name,
            "events": self.events,
            "engine": "engine",
            "allocator": self.alloc.name,
            "allocator_stats": self.alloc.stats(),
            "pool_compactions": self.alloc.state.compactions}
        if self.faults_on:
            meta["fault_events"] = self.fault_count
            meta["reroutes"] = self.reroutes
            meta["stalls"] = self.stall_count
            meta["candidate_refilters"] = self.faultrt.refilters
            meta["candidate_reuses"] = self.faultrt.reuses
            meta["candidate_invalidated"] = self.faultrt.invalidated
        return meta

    # ------------------------------------------------------- streaming support
    def compact_slots(self) -> int:
        """Renumber live slots to a dense prefix (arrival order preserved).

        Retired (completed) slots are dropped: active slots become ``0..a-1``
        and not-yet-admitted slots ``a..a+p-1`` in the same relative order, so
        both engine invariants survive — ascending slot order is still arrival
        order, and the allocation pool (rebuilt segment-by-segment in the new
        order) keeps exactly the live entries a batch run that never saw the
        retired flows would hold.  Stalled flows keep no allocation segment
        (they re-add on revival), matching their pre-compaction state.  Returns
        the number of retired slots dropped.

        Only the streaming driver calls this; the batch driver's slot space is
        its workload's arrival order and never shrinks.
        """
        active = self.active
        pending = np.arange(self.admit_idx, self.count, dtype=np.int64)
        keep = np.concatenate([active, pending])
        dropped = self.count - keep.size
        if dropped == 0:
            return 0
        count = keep.size
        capacity = max(64, count)
        # gather the live allocation segments before any array moves (old ids)
        state = self.alloc.state
        segs: List[Optional[Tuple[np.ndarray, int]]] = []
        for a in active:
            a = int(a)
            if self.faults_on and self.stalled[a]:
                segs.append(None)   # stalled: no live allocation until revived
            else:
                segs.append((state.flow_links(a).copy(), int(state.seg_cap[a])))
        for name in ("fid", "src", "dst", "src_router", "dst_router", "inj_link",
                     "ej_link", "num_switches", "congestion_events", "path_index",
                     "num_candidates", "cand_start", "cand_len"):
            old = getattr(self, name)
            arr = np.zeros(capacity, dtype=np.int64)
            arr[:count] = old[keep]
            setattr(self, name, arr)
        for name in ("start", "size", "remaining", "rate", "bytes_since_switch"):
            old = getattr(self, name)
            arr = np.zeros(capacity)
            arr[:count] = old[keep]
            setattr(self, name, arr)
        congested = np.zeros(capacity, dtype=bool)
        congested[:count] = self.currently_congested[keep]
        self.currently_congested = congested
        if self.faults_on:
            for name in ("stalled", "on_detour"):
                old = getattr(self, name)
                arr = np.zeros(capacity, dtype=bool)
                arr[:count] = old[keep]
                setattr(self, name, arr)
            hops = np.full(capacity, -1, dtype=np.int64)
            hops[:count] = self.record_hops[keep]
            self.record_hops = hops
        entries = [self.entries[int(s)] for s in keep]
        entries.extend([None] * (capacity - count))
        self.entries = entries
        # rebuild the allocation state over the new slot ids, in the new order
        new_state = AllocationState(capacity, self.num_links)
        for new_slot, seg in enumerate(segs):
            if seg is not None:
                links, cap = seg
                new_state.add(new_slot, links, cap)
        self.alloc.rebind(new_state,
                          {int(old): i for i, old in enumerate(keep)})
        self.active = np.arange(active.size, dtype=np.int64)
        self.admit_idx = active.size
        self.count = count
        self.capacity = capacity
        return dropped

    def reclaim_bank(self) -> int:
        """Drop dead detour segments from the candidate bank pool.

        Only valid when the bank is private to this run (the streaming driver's
        bank) — pair-candidate segments move, so every ``seg_start`` and the
        per-flow ``cand_start`` offsets are rewritten, and the fault runtime's
        survivor views (which cache segment offsets) are invalidated.  Shared
        batch-mode banks must never be reclaimed.  Returns pool entries freed.
        """
        bank = self.bank
        old_pool = bank.pool
        pieces: List[np.ndarray] = []
        pos = 0
        for entry in bank.entries.values():
            seg_start, seg_len = entry.seg_start, entry.seg_len
            for c in range(entry.num_candidates):
                s, length = int(seg_start[c]), int(seg_len[c])
                pieces.append(old_pool[s:s + length])
                seg_start[c] = pos
                pos += length
        if self.faults_on:
            for a in self.active:
                a = int(a)
                if self.on_detour[a]:
                    s, length = int(self.cand_start[a]), int(self.cand_len[a])
                    pieces.append(old_pool[s:s + length])
                    self.cand_start[a] = pos
                    pos += length
        freed = bank.used - pos
        new_pool = np.zeros(max(256, pos), dtype=np.int64)
        if pos:
            new_pool[:pos] = np.concatenate(pieces)
        bank.pool = new_pool
        bank.used = pos
        # re-point every admitted non-detour flow at its entry's moved segment
        for a in self.active:
            a = int(a)
            if not self.faults_on or not self.on_detour[a]:
                entry = self.entries[a]
                self.cand_start[a] = entry.seg_start[int(self.path_index[a])]
        if self.faultrt is not None:
            # survivor views cache seg_start copies; next use refilters them
            self.faultrt.views.clear()
        return freed


# ----------------------------------------------------------------------- engine
class FlowEngine:
    """Vectorized flow-level simulation of one workload (reference-equivalent).

    Drop-in replacement for :class:`repro.sim.reference.FlowLevelSimulator` — same
    constructor, same :meth:`run` contract, record-for-record identical results —
    with all per-event work vectorized over structure-of-arrays flow state.
    """

    def __init__(self, topology: Topology, routing, selector: Optional[PathSelector] = None,
                 transport: Optional[TransportModel] = None,
                 config: Optional[FlowSimConfig] = None, seed: int = 0) -> None:
        """Bind one (topology, routing, selector, transport) stack to shared caches."""
        self.topology = topology
        self.routing = routing
        self.selector = selector if selector is not None else FlowletSelector(seed=seed)
        self.transport = transport or ndp_transport()
        self.config = config or FlowSimConfig()
        self.rng = np.random.default_rng(seed)
        self.links = link_space_for(topology)
        self.bank = candidate_bank_for(routing, self.links)
        self.num_links = self.links.num_links
        rate_bytes = self.config.link_rate_bps / 8.0
        self.capacities = np.full(self.num_links, rate_bytes)
        self._link_util = np.zeros(self.num_links)

    # -------------------------------------------------------------------- run
    def run(self, workload: Workload, mapping: Optional[Sequence[int]] = None) -> SimulationResult:
        """Simulate ``workload`` and return per-flow records.

        ``mapping`` optionally remaps endpoints (randomized workload mapping).
        The whole workload is ingested up front and driven through one
        :class:`EngineCore` (the streaming driver in :mod:`repro.sim.stream`
        shares the same core, feeding it incrementally instead).
        """
        arrivals = workload.sorted_by_start()
        records: List[FlowRecord] = []
        core = EngineCore(self, len(arrivals), records.append)
        core.set_mapping(mapping)
        core.ingest(arrivals)
        config = self.config
        while (core.admit_idx < core.count or core.active.size) \
                and core.events < config.max_events:
            core.step()
        # drain any flows left when max_events was hit (same rate floor as the
        # completion search, matching the reference)
        for a in core.active:
            records.append(core.drain_record(int(a)))
        records.sort(key=lambda r: r.flow_id)
        self._link_util = core.alloc.link_util
        return SimulationResult(records=records, name=workload.name, meta=core.meta())


# ------------------------------------------------------------------ batched API
@dataclass
class SimCell:
    """One simulation cell of a sweep: a workload under one stack on one topology."""

    topology: Topology
    routing: object
    workload: Workload
    selector: Optional[PathSelector] = None
    transport: Optional[TransportModel] = None
    config: Optional[FlowSimConfig] = None
    mapping: Optional[Sequence[int]] = None
    seed: int = 0
    drop_warmup: bool = False
    meta: Dict[str, object] = field(default_factory=dict)


def simulate_many(cells: Sequence[SimCell], engine: str = "engine") -> List[SimulationResult]:
    """Run many simulation cells in order, sharing setup across them.

    Cells are executed sequentially (so stateful selectors shared between cells
    consume their RNG streams exactly as the equivalent sequence of
    :func:`repro.sim.flowsim.simulate_workload` calls would), but the expensive
    per-cell setup is amortized: link spaces are shared per topology through the
    kernel cache, and candidate paths are resolved once per (routing, router pair)
    through the pooled :class:`CandidateBank`.  This is the entry point the
    simulation-backed experiments (Figures 2, 12, 14, 15, 16, 20) sweep their
    (stack, workload, seed) grids through.

    ``engine="reference"`` runs every cell on the scalar reference simulator instead
    (the same escape hatch :func:`repro.sim.flowsim.simulate_workload` offers).
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; available: {ENGINES}")
    results: List[SimulationResult] = []
    for cell in cells:
        sim_cls = FlowEngine if engine == "engine" else FlowLevelSimulator
        sim = sim_cls(cell.topology, cell.routing, selector=cell.selector,
                      transport=cell.transport, config=cell.config, seed=cell.seed)
        result = sim.run(cell.workload, mapping=cell.mapping)
        if cell.drop_warmup:
            result = result.warmup_filtered()
        results.append(result)
    return results
