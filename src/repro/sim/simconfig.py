"""Shared configuration of the flow-level simulators.

Both the scalar reference simulator (:mod:`repro.sim.reference`) and the vectorized
engine (:mod:`repro.sim.engine`) consume the same :class:`FlowSimConfig`; keeping it in
its own module lets either implementation be imported without pulling in the other
(mirroring how :mod:`repro.kernels` separates the scalar specifications from the
vectorized kernels).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlowSimConfig:
    """Simulator parameters (defaults follow the paper's §VII-A setup)."""

    link_rate_bps: float = 10e9          # 10G endpoint/link rate
    per_hop_latency: float = 1e-6        # 1 us fixed delay per link (INET-style)
    host_latency: float = 10e-6          # endpoint software latency (interrupt throttling)
    flowlet_bytes: float = 64 * 1024.0   # bytes between flowlet path re-evaluations
    congestion_rate_fraction: float = 0.5  # "congested" = rate below this fraction of line rate
    rate_epsilon: float = 1.0            # bytes/s resolution for completion times
    max_events: int = 5_000_000

    def __post_init__(self) -> None:
        if self.link_rate_bps <= 0:
            raise ValueError("link_rate_bps must be positive")
        if self.flowlet_bytes <= 0:
            raise ValueError("flowlet_bytes must be positive")
