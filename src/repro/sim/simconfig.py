"""Shared configuration of the flow-level and packet-level simulators.

Both the scalar reference simulators (:mod:`repro.sim.reference`,
:mod:`repro.sim.packetsim_reference`) and the vectorized engines
(:mod:`repro.sim.engine`, :mod:`repro.sim.packetengine`) consume the same frozen
config dataclasses (:class:`FlowSimConfig`, :class:`PacketSimConfig`); keeping them
in their own module lets either implementation be imported without pulling in the
other (mirroring how :mod:`repro.kernels` separates the scalar specifications from
the vectorized kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.faults import FaultSchedule

#: Rate-allocation strategies of the vectorized engine (see
#: :mod:`repro.sim.allocstate`): ``"full"`` refills every active flow each event
#: (bit-identical to the scalar reference), ``"incremental"`` refills only the
#: incidence components the event touched, ``"bottleneck"`` refills only the
#: region downstream of the event in the cached bottleneck structure — O(true
#: perturbation) even on single-component dense traffic (see
#: :mod:`repro.sim.bottleneck`).  Both refiltering allocators are max-min exact
#: but accumulate floats in a different order than the global loop, so they are
#: opt-in.  The scalar reference simulator implements only ``"full"``.
ALLOCATORS = ("full", "incremental", "bottleneck")


@dataclass(frozen=True)
class FlowSimConfig:
    """Simulator parameters (defaults follow the paper's §VII-A setup)."""

    link_rate_bps: float = 10e9          # 10G endpoint/link rate
    per_hop_latency: float = 1e-6        # 1 us fixed delay per link (INET-style)
    host_latency: float = 10e-6          # endpoint software latency (interrupt throttling)
    flowlet_bytes: float = 64 * 1024.0   # bytes between flowlet path re-evaluations
    congestion_rate_fraction: float = 0.5  # "congested" = rate below this fraction of line rate
    rate_epsilon: float = 1.0            # bytes/s resolution for completion times
    max_events: int = 5_000_000
    allocator: str = "full"   # engine rate allocator ("full" | "incremental" | "bottleneck")
    #: Optional link/switch failure-and-recovery schedule (see
    #: :mod:`repro.sim.faults`); ``None`` runs on a static topology.
    faults: Optional[FaultSchedule] = None

    def __post_init__(self) -> None:
        if self.link_rate_bps <= 0:
            raise ValueError("link_rate_bps must be positive")
        if self.flowlet_bytes <= 0:
            raise ValueError("flowlet_bytes must be positive")
        if self.allocator not in ALLOCATORS:
            raise ValueError(
                f"unknown allocator {self.allocator!r}; available: {ALLOCATORS}")
        if self.faults is not None and not isinstance(self.faults, FaultSchedule):
            raise TypeError("faults must be a repro.sim.faults.FaultSchedule or None")


@dataclass(frozen=True)
class StreamConfig:
    """Streaming-service parameters of :class:`repro.sim.stream.StreamSimulator`.

    Windows are anchored at simulated time 0 and ``window`` seconds wide; the
    first ``warmup_windows`` of them are excluded from the steady-state
    estimators.  Compaction is governed purely by slot counts (never wall
    clock), so two runs over the same stream — or a checkpoint-restored run —
    compact at identical event positions.
    """

    window: float = 0.05                 # metrics window width in simulated seconds
    warmup_windows: int = 2              # windows excluded from steady-state stats
    reservoir: int = 2048                # per-window FCT reservoir capacity
    keep_windows: int = 256              # closed WindowStats retained in memory
    record_ring: int = 1024              # completed FlowRecords retained (no sink)
    compact_factor: float = 2.0          # compact when retired > factor * live slots
    min_retired: int = 1024              # retired slots needed before compacting
    initial_slots: int = 1024            # initial slot-array capacity

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.warmup_windows < 0:
            raise ValueError("warmup_windows must be >= 0")
        if self.reservoir < 1 or self.keep_windows < 1 or self.record_ring < 1:
            raise ValueError("reservoir, keep_windows and record_ring must be >= 1")
        if self.compact_factor <= 0:
            raise ValueError("compact_factor must be positive")
        if self.min_retired < 1 or self.initial_slots < 1:
            raise ValueError("min_retired and initial_slots must be >= 1")


@dataclass(frozen=True)
class PacketSimConfig:
    """Packet-simulator parameters (defaults per §VII-A6)."""

    link_rate_bps: float = 10e9
    packet_bytes: int = 9000                  # jumbo frames
    header_bytes: int = 64
    queue_packets: int = 8                    # shallow buffers
    window_packets: int = 8                   # sender congestion window
    per_hop_latency: float = 1e-6
    host_latency: float = 1e-6
    flowlet_packets: int = 8                  # packets per flowlet before re-picking a path
    rto: float = 500e-6                       # retransmission timeout for non-NDP transports
    max_events: int = 5_000_000

    def __post_init__(self) -> None:
        if self.packet_bytes <= self.header_bytes:
            raise ValueError("packet_bytes must exceed header_bytes")
        if self.queue_packets < 1 or self.window_packets < 1:
            raise ValueError("queue and window must hold at least one packet")
        if self.link_rate_bps <= 0:
            raise ValueError("link_rate_bps must be positive")
        if self.rto <= 0:
            raise ValueError("rto must be positive")
        if self.per_hop_latency <= 0 or self.host_latency <= 0:
            raise ValueError("per_hop_latency and host_latency must be positive")
        if self.flowlet_packets < 1:
            raise ValueError("flowlet_packets must hold at least one packet")
