"""Equipment cost model (paper §VII-A2, Figure 10).

The paper derives comparable-cost configurations from linear router- and cable-cost
models parameterised with list prices of 100GbE equipment (Mellanox gear on
ColfaxDirect, following the Slim Fly and Dragonfly papers):

* a router costs a fixed base plus a per-port price;
* an electrical (copper) cable is used for short runs — endpoint attachments and
  intra-group / intra-pod links;
* an optical (fiber) cable, roughly 2-3x more expensive, is used for long runs —
  inter-group, inter-pod and global links.

The absolute dollar values are approximations of 2019-era list prices; only the
*relative* cost per endpoint across topologies (the shape of Figure 10) matters for the
reproduction, and that shape is driven by the ratios encoded here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.topologies.base import Topology


@dataclass(frozen=True)
class CostModel:
    """Linear cost model: routers by radix, cables by type.

    All prices in USD.  Defaults approximate 100GbE equipment (see module docstring).
    """

    router_base: float = 2000.0
    router_per_port: float = 350.0
    copper_cable: float = 100.0
    fiber_cable: float = 350.0
    endpoint_nic: float = 500.0

    def router_cost(self, radix: int) -> float:
        if radix < 1:
            raise ValueError("radix must be >= 1")
        return self.router_base + self.router_per_port * radix

    def cable_cost(self, is_fiber: bool) -> float:
        return self.fiber_cable if is_fiber else self.copper_cable


def default_cost_model() -> CostModel:
    """The 100GbE cost model used throughout the experiments."""
    return CostModel()


@dataclass
class CostBreakdown:
    """Total and per-endpoint cost of one topology configuration."""

    topology_name: str
    num_endpoints: int
    switches: float
    interconnect_cables: float
    endpoint_links: float
    fiber_fraction: float
    meta: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.switches + self.interconnect_cables + self.endpoint_links

    @property
    def per_endpoint(self) -> float:
        return self.total / self.num_endpoints if self.num_endpoints else float("inf")

    def as_row(self) -> Dict[str, object]:
        return {
            "topology": self.topology_name,
            "N": self.num_endpoints,
            "switches": round(self.switches, 2),
            "interconnect": round(self.interconnect_cables, 2),
            "endpoint_links": round(self.endpoint_links, 2),
            "total": round(self.total, 2),
            "per_endpoint": round(self.per_endpoint, 2),
            "fiber_fraction": round(self.fiber_fraction, 3),
        }


def _link_is_fiber(topology: Topology, u: int, v: int) -> bool:
    """Classify a router-router link as long (fiber) or short (copper).

    The classification mirrors the paper's discussion: Dragonfly / Slim Fly inter-group
    links and fat-tree links into the core layer are long optical runs; intra-group,
    intra-pod and flat-topology local links are short electrical runs.  Topologies
    without structure information (Jellyfish, Xpander, HyperX) are treated as racks of
    routers where a fixed share of links leaves the rack — approximated by classifying
    links between "distant" router ids as fiber.
    """
    family = topology.meta.get("family")
    if family == "dragonfly":
        a = int(topology.meta["a"])
        return u // a != v // a
    if family == "slimfly":
        q = int(topology.meta["q"])
        return (u < q * q) != (v < q * q) or (u // q != v // q)
    if family == "fattree":
        num_edge = int(topology.meta["num_edge"])
        num_agg = int(topology.meta["num_agg"])
        # links touching the core layer are the long runs
        return u >= num_edge + num_agg or v >= num_edge + num_agg
    if family == "hyperx":
        side = int(topology.meta["side"])
        # links along the first dimension stay in the rack/row; others leave it
        return u // side != v // side
    if family in ("jellyfish", "xpander"):
        # random/flat topologies: links between distant racks (id blocks of 32) are long
        return abs(u - v) >= 32
    if family == "complete":
        return False
    return abs(u - v) >= 32


def cost_per_endpoint(topology: Topology, model: CostModel | None = None) -> CostBreakdown:
    """Cost breakdown (switches / interconnect cables / endpoint links) for a topology."""
    model = model or default_cost_model()
    switch_cost = 0.0
    degrees = topology.degrees()
    for router in range(topology.num_routers):
        ports = int(degrees[router]) + len(topology.endpoints_of_router(router))
        switch_cost += model.router_cost(max(1, ports))

    fiber_links = 0
    cable_cost = 0.0
    for u, v in topology.edges:
        fiber = _link_is_fiber(topology, u, v)
        fiber_links += int(fiber)
        cable_cost += model.cable_cost(fiber)

    endpoint_cost = topology.num_endpoints * (model.copper_cable + model.endpoint_nic)
    return CostBreakdown(
        topology_name=topology.name,
        num_endpoints=topology.num_endpoints,
        switches=switch_cost,
        interconnect_cables=cable_cost,
        endpoint_links=endpoint_cost,
        fiber_fraction=fiber_links / max(1, topology.num_edges),
    )
