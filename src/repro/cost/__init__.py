"""Cost model for fair-cost topology comparison (paper §VII-A2, Figure 10)."""

from repro.cost.model import CostBreakdown, CostModel, default_cost_model, cost_per_endpoint

__all__ = ["CostBreakdown", "CostModel", "default_cost_model", "cost_per_endpoint"]
