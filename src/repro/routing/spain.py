"""SPAIN — Smart Path Assignment In Networks (Mudigonda et al., NSDI'10).

SPAIN is the paper's closest layered-routing baseline (§VI, Appendix C.B): it
pre-computes, per destination, a set of (preferably link-disjoint) short paths, colours
the paths of each destination into VLANs such that each VLAN's per-destination subgraph
is loop-free, and finally merges VLANs of different destinations greedily as long as
the union stays acyclic.  Every merged VLAN is an acyclic link subset — i.e. a *layer*
in FatPaths terms, which is exactly how the comparison in the paper integrates it.

The key structural difference from FatPaths (and the source of SPAIN's disadvantage on
low-diameter topologies) is that each layer is a forest, so a layer can hold at most
``Nr - 1`` links and O(k') to O(Nr) layers are needed to cover the path diversity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.config import FatPathsConfig
from repro.core.layers import Layer, LayerSet
from repro.kernels.cache import kernels_for
from repro.routing.base import LayerSetRouting
from repro.topologies.base import Topology

Edge = Tuple[int, int]


def _normalize(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


def _weighted_shortest_path(adj: List[List[int]], weights: Dict[Edge, float],
                            source: int, target: int) -> Optional[List[int]]:
    """Dijkstra over hop-count + usage penalties (prefers link-disjoint repeats)."""
    import heapq

    dist = {source: 0.0}
    parent: Dict[int, int] = {}
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, float("inf")):
            continue
        if u == target:
            break
        for v in adj[u]:
            w = 1.0 + weights.get(_normalize(u, v), 0.0)
            nd = d + w
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    if target not in dist:
        return None
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def _vlan_compatible(path_a: Sequence[int], path_b: Sequence[int]) -> bool:
    """Listing 4's compatibility check: shared routers must agree on the next hop.

    Both paths lead to the same destination; if they disagree on the outgoing link at a
    shared router, putting them in one VLAN would create ambiguity/loops.
    """
    next_hop_a = {path_a[i]: path_a[i + 1] for i in range(len(path_a) - 1)}
    for i in range(len(path_b) - 1):
        router = path_b[i]
        if router in next_hop_a and next_hop_a[router] != path_b[i + 1]:
            return False
    return True


def _greedy_coloring(conflicts: List[Set[int]]) -> List[int]:
    """Greedy vertex colouring of the path-conflict graph (smallest available colour)."""
    colors = [-1] * len(conflicts)
    for vertex in range(len(conflicts)):
        used = {colors[other] for other in conflicts[vertex] if colors[other] >= 0}
        color = 0
        while color in used:
            color += 1
        colors[vertex] = color
    return colors


def _is_acyclic(num_routers: int, edges: Set[Edge]) -> bool:
    """Union-find cycle check for an undirected edge set."""
    parent = list(range(num_routers))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru == rv:
            return False
        parent[ru] = rv
    return True


def _bfs_spanning_tree(topology: Topology, root: int, rng: np.random.Generator) -> Set[Edge]:
    """BFS spanning tree rooted at ``root`` with randomised neighbour order."""
    adj = topology.adjacency()
    visited = {root}
    edges: Set[Edge] = set()
    frontier = [root]
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            neighbours = list(adj[u])
            rng.shuffle(neighbours)
            for v in neighbours:
                if v not in visited:
                    visited.add(v)
                    edges.add(_normalize(u, v))
                    nxt.append(v)
        frontier = nxt
    return edges


def build_spain_layers(topology: Topology, paths_per_pair: int = 3,
                       destinations: Optional[Sequence[int]] = None,
                       seed: int = 0, max_layers: Optional[int] = None,
                       return_paths: bool = False):
    """Run the SPAIN path pre-computation + VLAN merging and return the layers.

    Parameters
    ----------
    topology:
        Router graph.
    paths_per_pair:
        The ``k`` of SPAIN's per-destination k-path computation.
    destinations:
        Destination routers to compute VLANs for (default: all endpoint routers).
        Restricting this bounds the O(|V|^2 (|V|+|E|)) precomputation on larger graphs.
    seed:
        Randomisation seed (tie breaking, merge order).
    max_layers:
        Optional cap on the number of merged layers (VLAN hardware limit); excess
        layers are dropped, keeping the densest ones plus the fallback spanning tree.
    return_paths:
        If True, also return the per-pair precomputed paths
        (``{(source, destination): [paths]}``) — the paths SPAIN actually installs.
    """
    rng = np.random.default_rng(seed)
    adj = topology.adjacency()
    if destinations is None:
        destinations = list(topology.endpoint_routers)
    sources = list(topology.endpoint_routers)

    # Phase 1+2: per-destination path computation and VLAN colouring.
    kernels = kernels_for(topology)
    per_destination_vlans: List[Set[Edge]] = []
    pair_paths: Dict[Tuple[int, int], List[List[int]]] = {}
    for dest in destinations:
        # Cached distance row: sources disconnected from this destination are skipped
        # up front instead of each running a full (futile) weighted Dijkstra.
        dist_to_dest = kernels.distances_from(dest)
        paths: List[List[int]] = []
        for src in sources:
            if src == dest or dist_to_dest[src] < 0:
                continue
            weights: Dict[Edge, float] = {}
            for _ in range(paths_per_pair):
                path = _weighted_shortest_path(adj, weights, src, dest)
                if path is None:
                    break
                if path in paths:
                    break
                paths.append(path)
                pair_paths.setdefault((src, dest), []).append(path)
                for u, v in zip(path, path[1:]):
                    weights[_normalize(u, v)] = weights.get(_normalize(u, v), 0.0) + len(topology.edges)
        if not paths:
            continue
        conflicts: List[Set[int]] = [set() for _ in paths]
        for i in range(len(paths)):
            for j in range(i + 1, len(paths)):
                if not _vlan_compatible(paths[i], paths[j]):
                    conflicts[i].add(j)
                    conflicts[j].add(i)
        colors = _greedy_coloring(conflicts)
        for color in range(max(colors) + 1):
            edge_set: Set[Edge] = set()
            for path, c in zip(paths, colors):
                if c != color:
                    continue
                for u, v in zip(path, path[1:]):
                    edge_set.add(_normalize(u, v))
            if edge_set:
                per_destination_vlans.append(edge_set)

    # Phase 3: greedily merge VLANs across destinations while the union stays acyclic.
    order = list(range(len(per_destination_vlans)))
    rng.shuffle(order)
    merged: List[Set[Edge]] = []
    for idx in order:
        vlan = per_destination_vlans[idx]
        placed = False
        for target in merged:
            union = target | vlan
            if _is_acyclic(topology.num_routers, union):
                target |= vlan
                placed = True
                break
        if not placed:
            merged.append(set(vlan))

    # VLAN 1: a fallback spanning tree covering every pair (SPAIN's base VLAN).
    fallback = _bfs_spanning_tree(topology, int(rng.integers(topology.num_routers)), rng)
    merged.sort(key=len, reverse=True)
    if max_layers is not None and len(merged) > max_layers - 1:
        merged = merged[: max_layers - 1]
    layer_edge_sets = [fallback] + merged

    layers = [Layer(index=i, edges=frozenset(edges), is_full=False)
              for i, edges in enumerate(layer_edge_sets)]
    config = FatPathsConfig(num_layers=max(1, len(layers)), rho=1.0, seed=seed)
    layer_set = LayerSet(topology=topology, layers=layers, config=config,
                         meta={"algorithm": "spain", "paths_per_pair": paths_per_pair})
    if return_paths:
        return layer_set, pair_paths
    return layer_set


class SpainRouting(LayerSetRouting):
    """SPAIN as a multi-path provider.

    A pair's candidate paths are the paths SPAIN actually precomputes and maps to VLANs
    (at most ``paths_per_pair`` per pair); pairs whose destination was not part of the
    VLAN computation fall back to the spanning-tree VLAN (layer 0) route — matching
    SPAIN's behaviour of defaulting unknown destinations to VLAN 1.
    """

    def __init__(self, topology: Topology, paths_per_pair: int = 3,
                 destinations: Optional[Sequence[int]] = None, seed: int = 0,
                 max_layers: Optional[int] = None) -> None:
        layer_set, pair_paths = build_spain_layers(
            topology, paths_per_pair=paths_per_pair, destinations=destinations,
            seed=seed, max_layers=max_layers, return_paths=True)
        super().__init__(topology, layer_set, name="spain", fallback_to_full=True, seed=seed)
        self._pair_paths = pair_paths

    def router_paths(self, source_router: int, target_router: int) -> List[List[int]]:
        if source_router == target_router:
            return [[source_router]]
        precomputed = self._pair_paths.get((source_router, target_router))
        if precomputed:
            return precomputed
        # unknown destination: use the fallback spanning-tree VLAN only
        path = self.tables.path(0, source_router, target_router)
        return [path] if path else []
