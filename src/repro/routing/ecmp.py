"""ECMP / shortest-path multipath routing (the paper's routing performance baseline).

ECMP spreads flows over *equal-cost* (i.e. minimal) paths only.  On topologies with a
single shortest path per router pair (Slim Fly, Dragonfly) it degenerates to
single-path routing, which is exactly the deficiency FatPaths addresses.

The candidate set returned here is a set of edge-disjoint-preferring minimal paths,
capped at ``max_paths`` (hardware ECMP groups are similarly capped).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.kernels.cache import kernels_for
from repro.routing.base import MultiPathRouting
from repro.topologies.base import Topology


class EcmpRouting(MultiPathRouting):
    """Equal-cost multipath: up to ``max_paths`` minimal paths per router pair."""

    name = "ecmp"

    def __init__(self, topology: Topology, max_paths: int = 8, seed: int = 0) -> None:
        super().__init__(topology)
        if max_paths < 1:
            raise ValueError("max_paths must be >= 1")
        self.max_paths = max_paths
        self._rng = np.random.default_rng(seed)
        self._kernels = kernels_for(topology)
        self._cache: Dict[Tuple[int, int], List[List[int]]] = {}

    def _distances_from(self, target: int) -> np.ndarray:
        # Read-only row served by the shared path cache (one CSR BFS per distinct
        # target across *all* consumers of this topology, not per routing instance).
        return self._kernels.distances_from(target)

    def router_paths(self, source_router: int, target_router: int) -> List[List[int]]:
        if source_router == target_router:
            return [[source_router]]
        key = (source_router, target_router)
        if key in self._cache:
            return self._cache[key]
        dist_to_target = self._distances_from(target_router)
        if dist_to_target[source_router] < 0:
            self._cache[key] = []
            return []
        adj = self.topology.adjacency()
        paths: List[List[int]] = []
        used_edges = set()

        for _ in range(self.max_paths):
            # Greedy walk along the shortest-path DAG, preferring unused links; stop if
            # the only progress requires reusing a link already claimed by another path
            # and at least one path exists (keeps paths edge-disjoint where possible).
            path = [source_router]
            current = source_router
            reused = False
            while current != target_router:
                next_candidates = [v for v in adj[current]
                                   if dist_to_target[v] == dist_to_target[current] - 1]
                fresh = [v for v in next_candidates
                         if (min(current, v), max(current, v)) not in used_edges]
                pool = fresh if fresh else next_candidates
                if not pool:
                    path = None
                    break
                if not fresh:
                    reused = True
                current = int(self._rng.choice(pool))
                path.append(current)
            if path is None:
                break
            if reused and paths:
                break
            for u, v in zip(path, path[1:]):
                used_edges.add((min(u, v), max(u, v)))
            if path in paths:
                break
            paths.append(path)
            if reused:
                break
        self._cache[key] = paths
        return paths
