"""Common interface for multi-path routing schemes.

A routing scheme, for the purposes of the paper's comparisons, is a *path provider*:
given a pair of routers it returns the candidate router paths the scheme would use.
Both the simulators (which split flows/flowlets over the candidates) and the throughput
LPs (which solve for the optimal split) consume this interface.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.forwarding import ForwardingTables, build_forwarding_tables
from repro.core.layers import LayerSet
from repro.topologies.base import Topology


class MultiPathRouting(abc.ABC):
    """Protocol: candidate router paths per router pair."""

    #: Human-readable scheme name used in experiment tables.
    name: str = "routing"

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    @abc.abstractmethod
    def router_paths(self, source_router: int, target_router: int) -> List[List[int]]:
        """Candidate paths (lists of router ids, source first, target last)."""

    def endpoint_paths(self, source_endpoint: int, target_endpoint: int) -> List[List[int]]:
        rs = self.topology.router_of_endpoint(source_endpoint)
        rt = self.topology.router_of_endpoint(target_endpoint)
        if rs == rt:
            return [[rs]]
        return self.router_paths(rs, rt)

    def num_paths(self, source_router: int, target_router: int) -> int:
        return len(self.router_paths(source_router, target_router))

    def average_path_length(self, num_samples: int = 200,
                            rng: Optional[np.random.Generator] = None) -> float:
        """Mean candidate-path length over sampled endpoint-router pairs."""
        rng = rng or np.random.default_rng(0)
        routers = list(self.topology.endpoint_routers)
        total, count = 0.0, 0
        for _ in range(num_samples):
            s, t = rng.choice(routers, size=2)
            if s == t:
                continue
            for path in self.router_paths(int(s), int(t)):
                total += len(path) - 1
                count += 1
        return total / count if count else 0.0


class SinglePathRouting(MultiPathRouting):
    """Helper base class for schemes that return exactly one path per pair."""

    @abc.abstractmethod
    def router_path(self, source_router: int, target_router: int) -> Optional[List[int]]:
        """The single path, or None if the scheme cannot route the pair."""

    def router_paths(self, source_router: int, target_router: int) -> List[List[int]]:
        path = self.router_path(source_router, target_router)
        return [path] if path else []


class LayerSetRouting(MultiPathRouting):
    """Minimal routing inside an arbitrary set of layers (subgraphs).

    This is the generic machinery shared by FatPaths (random / interference layers),
    SPAIN (merged VLAN subgraphs) and PAST-style schemes: build per-layer forwarding
    tables and report the per-layer path for every pair.  Pairs unreachable inside a
    layer fall back to the first layer when ``fallback_to_full`` is set.
    """

    def __init__(self, topology: Topology, layer_set: LayerSet, name: str = "layered",
                 fallback_to_full: bool = True, seed: Optional[int] = None) -> None:
        super().__init__(topology)
        self.name = name
        self.layer_set = layer_set
        self.fallback_to_full = fallback_to_full
        self.tables: ForwardingTables = build_forwarding_tables(layer_set, seed=seed)
        self._cache: Dict[Tuple[int, int], List[List[int]]] = {}

    @property
    def num_layers(self) -> int:
        return len(self.layer_set)

    def router_paths(self, source_router: int, target_router: int) -> List[List[int]]:
        if source_router == target_router:
            return [[source_router]]
        key = (source_router, target_router)
        if key in self._cache:
            return self._cache[key]
        seen = set()
        paths: List[List[int]] = []
        for layer in range(self.num_layers):
            path = self.tables.path(layer, source_router, target_router,
                                    fallback_to_full=self.fallback_to_full)
            if path is None:
                continue
            tup = tuple(path)
            if tup in seen:
                continue
            seen.add(tup)
            paths.append(path)
        self._cache[key] = paths
        return paths

    def forwarding_entries(self) -> int:
        return self.tables.table_entries()
