"""The paper's Table I: path-diversity support across routing schemes.

Each scheme is classified along the paper's seven path-diversity aspects:

* ``SP``  — supports arbitrary shortest paths
* ``NP``  — supports non-minimal paths
* ``SM``  — supports shortest and non-minimal paths *simultaneously*
* ``MP``  — supports multi-pathing between two hosts
* ``DP``  — explicitly considers disjoint paths
* ``ALB`` — adaptive load balancing
* ``AT``  — applicable to an arbitrary topology

Values use the paper's three levels: ``yes`` (full support), ``limited`` (partial,
e.g. only within spanning trees or only for resilience) and ``no``.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, List

YES = "yes"
LIMITED = "limited"
NO = "no"

FEATURES = ("SP", "NP", "SM", "MP", "DP", "ALB", "AT")


@dataclass(frozen=True)
class SchemeFeatures:
    """One row of Table I."""

    name: str
    stack_layer: str
    SP: str
    NP: str
    SM: str
    MP: str
    DP: str
    ALB: str
    AT: str
    category: str = "routing architecture"

    def supports_all(self) -> bool:
        return all(getattr(self, f) == YES for f in FEATURES)

    def score(self) -> int:
        """Count of fully supported aspects (used for sanity checks / sorting)."""
        return sum(getattr(self, f) == YES for f in FEATURES)

    def as_row(self) -> Dict[str, str]:
        return asdict(self)


ROUTING_SCHEME_TABLE: Dict[str, SchemeFeatures] = {
    scheme.name: scheme
    for scheme in [
        # -- simple routing protocols -------------------------------------------------
        SchemeFeatures("VLB", "L2-L3", NO, YES, NO, NO, NO, NO, YES,
                       category="simple protocol"),
        SchemeFeatures("SpanningTree", "L2", LIMITED, LIMITED, NO, NO, NO, NO, YES,
                       category="simple protocol"),
        SchemeFeatures("OSPF", "L2-L3", YES, NO, NO, NO, NO, NO, YES,
                       category="simple protocol"),
        SchemeFeatures("UGAL", "L2-L3", YES, YES, NO, NO, NO, YES, YES,
                       category="simple protocol"),
        SchemeFeatures("ECMP", "L2-L3", YES, NO, NO, YES, NO, NO, YES,
                       category="simple protocol"),
        # -- routing architectures ----------------------------------------------------
        SchemeFeatures("PortLand", "L2", YES, NO, NO, YES, NO, NO, NO),
        SchemeFeatures("DRILL", "L2", YES, NO, NO, YES, NO, YES, NO),
        SchemeFeatures("VL2", "L3", YES, NO, NO, YES, NO, LIMITED, NO),
        SchemeFeatures("BCube", "L2-L3", YES, NO, NO, YES, YES, NO, NO),
        SchemeFeatures("PAST", "L2", LIMITED, LIMITED, NO, NO, YES, NO, YES),
        SchemeFeatures("SPAIN", "L2", LIMITED, LIMITED, LIMITED, YES, YES, NO, YES),
        SchemeFeatures("MPTCP-ECMP", "L3-L4", YES, NO, NO, YES, NO, YES, YES),
        # -- path encoding schemes (complementary) ------------------------------------
        SchemeFeatures("XPath", "L3", YES, LIMITED, LIMITED, YES, YES, LIMITED, YES,
                       category="path encoding"),
        SchemeFeatures("SourceRouting", "L3", YES, LIMITED, LIMITED, NO, NO, NO, LIMITED,
                       category="path encoding"),
        # -- this work -----------------------------------------------------------------
        SchemeFeatures("FatPaths", "L2-L3", YES, YES, YES, YES, YES, YES, YES,
                       category="this work"),
    ]
}


def feature_table(sort_by_score: bool = False) -> List[Dict[str, str]]:
    """Table I as a list of row dictionaries."""
    rows = [scheme.as_row() for scheme in ROUTING_SCHEME_TABLE.values()]
    if sort_by_score:
        rows.sort(key=lambda r: sum(r[f] == YES for f in FEATURES), reverse=True)
    return rows


def only_fully_supporting_scheme() -> str:
    """The unique scheme supporting every aspect (the paper's claim: FatPaths)."""
    full = [name for name, scheme in ROUTING_SCHEME_TABLE.items() if scheme.supports_all()]
    if len(full) != 1:
        raise RuntimeError(f"expected exactly one fully-supporting scheme, found {full}")
    return full[0]
