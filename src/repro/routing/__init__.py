"""Baseline routing schemes the paper compares FatPaths against (§VI, Table I).

All schemes implement the :class:`repro.routing.base.MultiPathRouting` protocol —
"return the candidate router paths between two routers" — so the simulators and the
throughput LPs can treat FatPaths, ECMP, k-shortest-paths, SPAIN, PAST and Valiant
routing uniformly.
"""

from repro.routing.base import LayerSetRouting, MultiPathRouting, SinglePathRouting
from repro.routing.ecmp import EcmpRouting
from repro.routing.ksp import KShortestPathsRouting
from repro.routing.past import PastRouting
from repro.routing.spain import SpainRouting
from repro.routing.valiant import ValiantRouting
from repro.routing.comparison import ROUTING_SCHEME_TABLE, SchemeFeatures, feature_table

__all__ = [
    "MultiPathRouting",
    "SinglePathRouting",
    "LayerSetRouting",
    "EcmpRouting",
    "KShortestPathsRouting",
    "PastRouting",
    "SpainRouting",
    "ValiantRouting",
    "ROUTING_SCHEME_TABLE",
    "SchemeFeatures",
    "feature_table",
]
