"""Valiant load balancing (VLB) routing (Table I's classic non-minimal baseline).

Each candidate path routes minimally to a random intermediate router and minimally on
to the destination, which doubles the average path length but spreads load obliviously
— useful as an upper bound on path stretch and as a building block for adversarial
comparisons.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kernels.cache import kernels_for
from repro.routing.base import MultiPathRouting
from repro.topologies.base import Topology


class ValiantRouting(MultiPathRouting):
    """VLB: minimal path to a random intermediate, then minimal path to the target."""

    name = "valiant"

    def __init__(self, topology: Topology, num_paths: int = 4, seed: int = 0) -> None:
        super().__init__(topology)
        if num_paths < 1:
            raise ValueError("num_paths must be >= 1")
        self.num_paths = num_paths
        self._rng = np.random.default_rng(seed)
        self._kernels = kernels_for(topology)
        self._cache: Dict[Tuple[int, int], List[List[int]]] = {}
        self._adj = topology.adjacency()

    def _distances_from(self, router: int) -> np.ndarray:
        # Shared-cache distance row (VLB queries distances from every intermediate,
        # which the batched CSR kernels serve without per-instance recomputation).
        return self._kernels.distances_from(router)

    def _minimal_path(self, source: int, target: int) -> Optional[List[int]]:
        dist = self._distances_from(target)
        if dist[source] < 0:
            return None
        path = [source]
        current = source
        while current != target:
            candidates = [v for v in self._adj[current] if dist[v] == dist[current] - 1]
            if not candidates:
                return None
            current = int(self._rng.choice(candidates))
            path.append(current)
        return path

    def router_paths(self, source_router: int, target_router: int) -> List[List[int]]:
        if source_router == target_router:
            return [[source_router]]
        key = (source_router, target_router)
        if key in self._cache:
            return self._cache[key]
        paths: List[List[int]] = []
        seen = set()
        attempts = 0
        while len(paths) < self.num_paths and attempts < 10 * self.num_paths:
            attempts += 1
            intermediate = int(self._rng.integers(self.topology.num_routers))
            first = self._minimal_path(source_router, intermediate)
            second = self._minimal_path(intermediate, target_router)
            if first is None or second is None:
                continue
            combined = first + second[1:]
            # discard candidates that revisit a router (would loop in practice)
            if len(set(combined)) != len(combined):
                continue
            tup = tuple(combined)
            if tup in seen:
                continue
            seen.add(tup)
            paths.append(combined)
        if not paths:
            direct = self._minimal_path(source_router, target_router)
            if direct:
                paths.append(direct)
        self._cache[key] = paths
        return paths
