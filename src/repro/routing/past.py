"""PAST — Per-Address Spanning Trees (Stephens et al., CoNEXT'12).

PAST installs one spanning tree per destination address and forwards all traffic
towards that destination along its tree — so there is exactly one path per
(source, destination) pair and no multi-pathing between two hosts (the deficiency
Table I and §VI call out).  Two tree-construction variants from the paper's appendix:

* ``variant="shortest"`` — breadth-first tree rooted at the destination with random
  tie-breaking (destination-rooted shortest paths).
* ``variant="nonminimal"`` — the Valiant-inspired variant: the BFS tree is rooted at a
  *random* switch, so paths towards the destination may be non-minimal.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.routing.base import SinglePathRouting
from repro.topologies.base import Topology


class PastRouting(SinglePathRouting):
    """One spanning tree per destination router; a single path per router pair."""

    name = "past"

    def __init__(self, topology: Topology, variant: str = "shortest", seed: int = 0) -> None:
        super().__init__(topology)
        if variant not in ("shortest", "nonminimal"):
            raise ValueError("variant must be 'shortest' or 'nonminimal'")
        self.variant = variant
        self._rng = np.random.default_rng(seed)
        # parent[dest][v] = next router from v towards dest inside dest's tree
        self._parents: Dict[int, np.ndarray] = {}

    def _build_tree(self, destination: int) -> np.ndarray:
        adj = self.topology.adjacency()
        n = self.topology.num_routers
        root = destination
        if self.variant == "nonminimal":
            root = int(self._rng.integers(n))
        parent = np.full(n, -1, dtype=np.int64)
        parent[root] = root
        frontier = [root]
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                neighbours = list(adj[u])
                self._rng.shuffle(neighbours)
                for v in neighbours:
                    if parent[v] < 0:
                        parent[v] = u
                        nxt.append(v)
            frontier = nxt
        if self.variant == "nonminimal" and root != destination:
            # Reorient the tree so that walking parents always reaches `destination`:
            # reverse the root->destination branch.
            chain = [destination]
            while chain[-1] != root:
                chain.append(int(parent[chain[-1]]))
            for child, above in zip(chain, chain[1:]):
                parent[above] = child
            parent[destination] = destination
        return parent

    def _parents_for(self, destination: int) -> np.ndarray:
        if destination not in self._parents:
            self._parents[destination] = self._build_tree(destination)
        return self._parents[destination]

    def router_path(self, source_router: int, target_router: int) -> Optional[List[int]]:
        if source_router == target_router:
            return [source_router]
        parent = self._parents_for(target_router)
        if parent[source_router] < 0:
            return None
        path = [source_router]
        current = source_router
        for _ in range(self.topology.num_routers + 1):
            current = int(parent[current])
            path.append(current)
            if current == target_router:
                return path
        raise RuntimeError("PAST tree walk did not terminate")  # pragma: no cover

    def tree_count(self) -> int:
        """Number of spanning trees PAST needs: one per destination (O(N) by design)."""
        return len(self.topology.endpoint_routers)
