"""k-shortest-paths routing (Jellyfish's routing scheme, paper §VI baseline).

Spreads traffic over the ``k`` shortest simple paths between two routers (which, unlike
ECMP, may include non-minimal paths).  Path enumeration uses Yen's algorithm via
NetworkX's ``shortest_simple_paths`` generator.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, List, Tuple

import networkx as nx

from repro.kernels.cache import kernels_for
from repro.routing.base import MultiPathRouting
from repro.topologies.base import Topology


class KShortestPathsRouting(MultiPathRouting):
    """The k shortest simple paths per router pair (Yen's algorithm)."""

    name = "ksp"

    def __init__(self, topology: Topology, k: int = 8) -> None:
        super().__init__(topology)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._graph = topology.to_networkx()
        self._kernels = kernels_for(topology)
        self._cache: Dict[Tuple[int, int], List[List[int]]] = {}

    def router_paths(self, source_router: int, target_router: int) -> List[List[int]]:
        if source_router == target_router:
            return [[source_router]]
        key = (source_router, target_router)
        if key in self._cache:
            return self._cache[key]
        # Unreachable pairs are answered by the cached distance row instead of paying
        # for Yen's generator setup and its NetworkXNoPath unwind.
        if self._kernels.distances_from(source_router)[target_router] < 0:
            paths: List[List[int]] = []
        else:
            generator = nx.shortest_simple_paths(self._graph, source_router, target_router)
            paths = [list(p) for p in islice(generator, self.k)]
        self._cache[key] = paths
        return paths
