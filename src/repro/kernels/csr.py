"""Compressed-sparse-row adjacency and vectorized batched graph kernels.

This module is the computational core of :mod:`repro.kernels`: an immutable CSR
adjacency representation (``indptr``/``indices`` arrays, both orientations of every
undirected link) plus level-synchronous batched BFS written entirely as array
operations — one sparse-matrix frontier expansion and one boolean-mask sweep per BFS
level instead of a Python queue loop per source.  The paper's topologies are
low-diameter by construction, so a whole all-pairs sweep finishes in two to four
vectorized levels.  All kernels produce results bit-identical to the legacy
per-source Python BFS in :mod:`repro.kernels.reference` (hop distances are unique, so
any correct BFS agrees), which the equivalence test suite asserts on every topology
generator.

Degenerate graphs are first-class citizens: empty edge lists, isolated routers and
single-router graphs all work without special-casing by callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix

Edge = Tuple[int, int]

#: Sources per batched-BFS chunk are chosen so one chunk's distance block stays
#: around this many int64 entries (keeps peak memory flat on large graphs).
_CHUNK_ENTRY_BUDGET = 1 << 22


@dataclass(frozen=True)
class CSRGraph:
    """Immutable CSR adjacency of an undirected graph over ``num_nodes`` vertices.

    ``indices[indptr[u]:indptr[u+1]]`` are the (sorted) neighbours of ``u``.  Both
    orientations of every undirected edge are stored, so ``indices.size`` equals twice
    the number of undirected links.
    """

    num_nodes: int
    indptr: np.ndarray
    indices: np.ndarray

    @classmethod
    def from_edges(cls, num_nodes: int, edges: Iterable[Edge]) -> "CSRGraph":
        """Build the CSR arrays from an ``(m, 2)`` array or iterable of undirected edges."""
        if isinstance(edges, np.ndarray):
            edge_arr = edges.astype(np.int64, copy=False)
        else:
            edge_arr = np.asarray(list(edges), dtype=np.int64)
        if edge_arr.size == 0:
            return cls(num_nodes=num_nodes,
                       indptr=np.zeros(num_nodes + 1, dtype=np.int64),
                       indices=np.empty(0, dtype=np.int64))
        heads = np.concatenate([edge_arr[:, 0], edge_arr[:, 1]])
        tails = np.concatenate([edge_arr[:, 1], edge_arr[:, 0]])
        # single combined-key argsort (head-major, tail-minor) — much cheaper than
        # np.lexsort for the small-to-medium arrays this sees constantly
        order = np.argsort(heads * num_nodes + tails, kind="stable")
        heads, tails = heads[order], tails[order]
        counts = np.bincount(heads, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(num_nodes=num_nodes, indptr=indptr, indices=tails)

    # ------------------------------------------------------------------ basics
    @property
    def num_edges(self) -> int:
        """Number of undirected links."""
        return self.indices.size // 2

    def degrees(self) -> np.ndarray:
        """Per-vertex degree (number of incident undirected links)."""
        return (self.indptr[1:] - self.indptr[:-1]).astype(np.int64)

    def scipy_adjacency(self, dtype=np.int64) -> csr_matrix:
        """The adjacency as a ``scipy.sparse.csr_matrix`` (0/1 entries)."""
        data = np.ones(self.indices.size, dtype=dtype)
        return csr_matrix((data, self.indices.copy(), self.indptr.copy()),
                          shape=(self.num_nodes, self.num_nodes))

    @cached_property
    def _adjacency_int32(self) -> csr_matrix:
        """Memoised int32 adjacency for the batched-BFS inner loop."""
        return self.scipy_adjacency(dtype=np.int32)

    @cached_property
    def dense_adjacency(self) -> np.ndarray:
        """Memoised dense symmetric boolean adjacency (read-only).

        Built once per graph for consumers that slice dense per-item blocks
        (the batched disjoint-path kernel); callers must not mutate it.
        """
        dense = np.zeros((self.num_nodes, self.num_nodes), dtype=bool)
        if self.indices.size:
            heads = np.repeat(np.arange(self.num_nodes, dtype=np.int64),
                              np.diff(self.indptr).astype(np.int64))
            dense[heads, self.indices] = True
        dense.setflags(write=False)
        return dense

    def neighbours(self, node: int) -> np.ndarray:
        """The (sorted) neighbour slice of ``node`` — a view into the CSR arrays."""
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    # ------------------------------------------------------------------- BFS
    def _bfs_from_seeds(self, seeds: np.ndarray) -> np.ndarray:
        """Level-synchronous BFS from per-row seed sets.

        ``seeds`` is a boolean ``(rows, num_nodes)`` array; row ``r``'s BFS starts
        simultaneously from every seeded vertex.  Each level does one sparse-matrix
        frontier expansion (``A @ frontier``) followed by one boolean-mask sweep
        against the visited set; hop distances land in an int64 array (-1 where
        unreachable).
        """
        rows, n = seeds.shape
        dist = np.full((rows, n), -1, dtype=np.int64)
        dist[seeds] = 0
        if self.indices.size == 0:
            return dist
        adj = self._adjacency_int32
        reached = seeds.copy()
        frontier = seeds.astype(np.int32)
        level = 0
        while True:
            level += 1
            # (n, rows) sparse @ dense product = per-vertex frontier-neighbour counts
            expanded = (adj @ frontier.T).T
            fresh = (expanded != 0) & ~reached
            if not fresh.any():
                return dist
            dist[fresh] = level
            reached |= fresh
            frontier = fresh.astype(np.int32)

    def bfs_distances_batch(self, sources: Sequence[int]) -> np.ndarray:
        """Hop distances from every source to every vertex, ``-1`` if unreachable.

        Returns an ``(len(sources), num_nodes)`` int64 array.  All sources advance
        one BFS level per vectorized sweep (see :meth:`_bfs_from_seeds`); duplicate
        sources are allowed and produce identical rows.
        """
        src = np.asarray(list(sources), dtype=np.int64)
        n = self.num_nodes
        if src.size == 0:
            return np.empty((0, n), dtype=np.int64)
        if (src < 0).any() or (src >= n).any():
            raise ValueError("BFS source out of range")
        if src.size == 1:
            return self.multi_source_distances(src)[None, :]
        seeds = np.zeros((src.size, n), dtype=bool)
        seeds[np.arange(src.size), src] = True
        return self._bfs_from_seeds(seeds)

    def distance_matrix(self) -> np.ndarray:
        """All-pairs hop distances (``-1`` for unreachable), chunked over sources."""
        n = self.num_nodes
        chunk = max(1, _CHUNK_ENTRY_BUDGET // max(1, n))
        if n <= chunk:
            return self.bfs_distances_batch(range(n))
        blocks = [self.bfs_distances_batch(range(start, min(start + chunk, n)))
                  for start in range(0, n, chunk)]
        return np.concatenate(blocks, axis=0)

    def multi_source_distances(self, sources: Sequence[int]) -> np.ndarray:
        """Distance from the *nearest* source to every vertex (one combined BFS).

        Single-row BFS keeps the frontier as an index array (ranged gather +
        ``np.unique`` per level) rather than a dense mask — much cheaper for the
        one-off connectivity and bound queries this serves.
        """
        src = np.unique(np.asarray(list(sources), dtype=np.int64))
        n = self.num_nodes
        dist = np.full(n, -1, dtype=np.int64)
        if src.size == 0:
            return dist
        if src[0] < 0 or src[-1] >= n:
            raise ValueError("BFS source out of range")
        dist[src] = 0
        frontier = src
        level = 0
        indptr, indices = self.indptr, self.indices
        while frontier.size:
            level += 1
            counts = indptr[frontier + 1] - indptr[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            cum = np.cumsum(counts)
            offsets = np.arange(total, dtype=np.int64) + np.repeat(
                indptr[frontier] - (cum - counts), counts)
            neighbours = indices[offsets]
            fresh = neighbours[dist[neighbours] < 0]
            if fresh.size == 0:
                break
            dist[fresh] = level  # duplicate writes are idempotent
            frontier = np.flatnonzero(dist == level)
        return dist

    # ----------------------------------------------------------- connectivity
    def is_connected(self) -> bool:
        """True iff the graph is connected (single-vertex graphs are connected)."""
        if self.num_nodes <= 1:
            return True
        if self.num_edges == 0:
            return False
        return bool((self.multi_source_distances([0]) >= 0).all())

    def eccentricities(self, sources: Optional[Sequence[int]] = None) -> np.ndarray:
        """Max finite distance from each source; raises if any pair is unreachable."""
        rows = (self.distance_matrix() if sources is None
                else self.bfs_distances_batch(sources))
        if rows.size and (rows < 0).any():
            raise ValueError("graph is disconnected; eccentricity undefined")
        return rows.max(axis=1) if rows.size else np.zeros(0, dtype=np.int64)


#: Below this vertex count a scalar DFS beats the vectorized BFS (array setup
#: dominates); measured crossover is a few hundred vertices on current NumPy.
_SCALAR_CONNECTIVITY_CUTOFF = 512


def edges_connected(num_nodes: int, edges: Sequence[Edge]) -> bool:
    """Connectivity check on a raw edge list without building a Topology.

    Dispatches between a scalar DFS (small graphs, where per-call array setup costs
    more than the whole traversal) and the vectorized CSR BFS; both agree exactly,
    which the equivalence suite pins down.
    """
    if num_nodes <= 1:
        return True
    if num_nodes <= _SCALAR_CONNECTIVITY_CUTOFF:
        edge_list = edges.tolist() if isinstance(edges, np.ndarray) else edges
        adj: list = [[] for _ in range(num_nodes)]
        for u, v in edge_list:
            adj[u].append(v)
            adj[v].append(u)
        seen = bytearray(num_nodes)
        stack = [0]
        seen[0] = 1
        count = 1
        while stack:
            x = stack.pop()
            for y in adj[x]:
                if not seen[y]:
                    seen[y] = 1
                    count += 1
                    stack.append(y)
        return count == num_nodes
    return CSRGraph.from_edges(num_nodes, edges).is_connected()


def edges_connected_batch(num_nodes: int, candidates: Sequence[Sequence[Edge]]) -> np.ndarray:
    """Connectivity of many candidate edge subsets over the same vertex set.

    All candidates are embedded as blocks of one block-diagonal graph (candidate
    ``k``'s vertices are offset by ``k * num_nodes``) and a single batched BFS from
    each block's vertex 0 decides every candidate at once — one vectorized sweep per
    *block* of layer-resampling attempts instead of one traversal per attempt.
    Agrees exactly with :func:`edges_connected` per candidate.
    """
    blocks = list(candidates)
    if not blocks:
        return np.zeros(0, dtype=bool)
    if num_nodes <= 1:
        return np.ones(len(blocks), dtype=bool)
    if len(blocks) == 1:
        return np.array([edges_connected(num_nodes, blocks[0])])
    offset_edges = []
    for k, edges in enumerate(blocks):
        arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        offset_edges.append(arr + k * num_nodes)
    graph = CSRGraph.from_edges(num_nodes * len(blocks), np.concatenate(offset_edges, axis=0))
    sources = np.arange(len(blocks), dtype=np.int64) * num_nodes
    dist = graph.bfs_distances_batch(sources).reshape(len(blocks), len(blocks), num_nodes)
    own_blocks = dist[np.arange(len(blocks)), np.arange(len(blocks))]
    return (own_blocks >= 0).all(axis=1)
