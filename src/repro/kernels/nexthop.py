"""Vectorized next-hop forwarding-table construction (paper §V-A, Listing 3).

FatPaths forwards destination-based: within one layer the routing function
``sigma(s, t)`` returns a neighbour of ``s`` that lies on a minimal path towards
``t`` *inside that layer*, chosen uniformly at random when several neighbours make
progress ("choose a random first step port, if there are multiple options").

The seed implementation looped over sources in Python, drawing one neighbour
permutation per source.  This module builds the whole dense ``(N, N)`` table with
array operations instead:

1.  draw one random key per directed CSR slot (a single ``rng.random(m)`` call);
2.  order each source's neighbour slots by key (stable argsort per CSR segment) —
    the resulting per-source slot permutation *is* the random visiting order of the
    scalar algorithm;
3.  scan the permuted slots: for rank ``r = 0, 1, ...`` take every source's rank-r
    neighbour at once and let it claim, in one masked in-place assignment over the
    whole ``(sources, N)`` plane, the still-unassigned destinations it makes
    minimal progress towards (``dist(v, t) == dist(s, t) - 1``).

The scan loops over *ports* (max degree iterations), never over sources, and is
chunked over source rows so the working set stays within a fixed entry budget.  :func:`repro.kernels.reference.next_hop_table_python` implements the
identical semantics with the scalar per-source loop, and the equivalence suite pins
the two bit-for-bit across topology generators, sparsified layers and random
degenerate graphs.

Unlike the seed implementation, pairs with no path inside the layer are left
``unreachable`` (the seed's float comparison ``inf == inf - 1`` spuriously assigned
next hops for disconnected pairs; those entries were unused by path extraction but
inflated the §VI-B table-entry counts).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.kernels.csr import CSRGraph

#: Sentinel for "no next hop" (mirrors ``repro.core.forwarding.UNREACHABLE``).
UNREACHABLE = -1

#: Budget (in entries) for the per-rank ``(chunk, N)`` working planes of the slot
#: scan — each of the ``max_degree`` rank iterations gathers and masks blocks of
#: this size, sequentially, so peak memory is a small multiple of the budget.
_CHUNK_ENTRY_BUDGET = 1 << 22

#: Seed material accepted by :func:`next_hop_table` (anything ``default_rng`` takes).
SeedLike = Union[int, tuple, np.random.SeedSequence, None]


def slot_ranks(csr: CSRGraph, keys: np.ndarray) -> np.ndarray:
    """Per-source permutation ranks of the CSR neighbour slots, from random keys.

    ``keys`` holds one float per directed CSR slot.  The returned array gives every
    slot its position in the key-ascending ordering *of its own source's slice* —
    exactly the random neighbour visiting order of the scalar algorithm (stable, so
    equal keys keep CSR order).
    """
    m = csr.indices.size
    if keys.shape != (m,):
        raise ValueError(f"keys must have shape ({m},)")
    degrees = np.diff(csr.indptr).astype(np.int64)
    segment = np.repeat(np.arange(csr.num_nodes, dtype=np.int64), degrees)
    order = np.lexsort((keys, segment))
    ranks = np.empty(m, dtype=np.int64)
    ranks[order] = np.arange(m, dtype=np.int64) - csr.indptr[segment[order]]
    return ranks


def next_hop_table(csr: CSRGraph, distances: np.ndarray, seed: SeedLike,
                   out_dtype=np.int32) -> np.ndarray:
    """Dense random-minimal next-hop table for one graph (vectorized Listing 3).

    Parameters
    ----------
    csr:
        The (layer sub)graph adjacency.
    distances:
        Its all-pairs hop-distance matrix — int with ``-1`` or float with ``inf``
        for unreachable pairs (both cached forms work and yield the same table).
    seed:
        Seed material for ``np.random.default_rng``; equal seeds give equal tables.
    out_dtype:
        Integer dtype of the returned table.

    Returns
    -------
    table:
        ``table[s, t]`` is the next router from ``s`` towards ``t`` (``table[s, s]
        == s``), or ``UNREACHABLE`` when ``t`` has no path from ``s`` in this graph.
    """
    n = csr.num_nodes
    distances = np.asarray(distances)
    if distances.shape != (n, n):
        raise ValueError(f"distances must have shape ({n}, {n})")
    table = np.full((n, n), UNREACHABLE, dtype=out_dtype)
    m = csr.indices.size
    if m:
        # Normalize distances to a compact signed int with -1 for unreachable: hop
        # counts are small, and in int space the progress test needs no finiteness
        # mask — ``want`` is -1 only towards the own diagonal (where every
        # neighbour sits at distance 1) and -2 towards unreachable destinations
        # (below every entry).
        dist_dtype = np.int16 if n < np.iinfo(np.int16).max else np.int32
        if distances.dtype.kind == "f":
            dist = np.where(np.isfinite(distances), distances, -1).astype(dist_dtype)
        else:
            dist = distances.astype(dist_dtype)
        rng = np.random.default_rng(seed)
        ranks = slot_ranks(csr, rng.random(m))
        degrees = np.diff(csr.indptr).astype(np.int64)
        max_degree = int(degrees.max())
        # padded per-source slot tables, reordered so column r holds every source's
        # rank-r neighbour (the permuted scan order)
        slot = np.arange(max_degree, dtype=np.int64)[None, :]
        valid = slot < degrees[:, None]
        flat = np.minimum(csr.indptr[:-1, None] + slot, m - 1)
        neighbours = np.where(valid, csr.indices[flat], 0)
        order = np.argsort(np.where(valid, ranks[flat], max_degree), axis=1,
                           kind="stable")
        by_rank = np.take_along_axis(neighbours, order, axis=1)
        valid_by_rank = np.take_along_axis(valid, order, axis=1)
        chunk = max(1, _CHUNK_ENTRY_BUDGET // max(1, n))
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            rows = table[start:stop]
            want = dist[start:stop] - dist_dtype(1)
            for r in range(max_degree):
                hop = by_rank[start:stop, r]
                claim = ((dist[hop] == want) & (rows == UNREACHABLE)
                         & valid_by_rank[start:stop, r, None])
                np.copyto(rows, hop[:, None].astype(out_dtype), where=claim)
    np.fill_diagonal(table, np.arange(n, dtype=out_dtype))
    return table


def normalize_seed_key(seed: SeedLike) -> Optional[tuple]:
    """A hashable cache key for ``seed``, or ``None`` when caching would be wrong.

    Ints and int sequences key by their values.  ``None`` (entropy from the OS —
    every draw differs) and ``SeedSequence`` objects (whose stream depends on
    ``spawn_key``/``pool_size`` state beyond the entropy) return ``None``:
    caching them could serve one frozen table for seeds that must differ, so
    callers must treat ``None`` as "build fresh, do not cache".
    """
    if isinstance(seed, (int, np.integer)):
        return (int(seed),)
    if isinstance(seed, (tuple, list)) and all(
            isinstance(s, (int, np.integer)) for s in seed):
        return tuple(int(s) for s in seed)
    return None
