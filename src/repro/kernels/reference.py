"""Legacy scalar reference implementations, preserved for equivalence testing.

These are the pure-Python per-source/per-pair kernels the repository shipped with
before the vectorized CSR engine in :mod:`repro.kernels` replaced them on the hot
paths.  They are kept (modulo operating on raw adjacency data instead of a
``Topology``) so that

* the equivalence test suite can assert, on every topology generator, that the
  vectorized kernels reproduce the scalar results bit-for-bit, and
* the benchmark suite can report the legacy-vs-kernel speedup on identical inputs.

Two entries are *specifications* rather than seed code:
:func:`greedy_disjoint_paths_python` and :func:`next_hop_table_python` define the
deterministic tie-breaking semantics (documented per function) that the batched
kernels in :mod:`repro.kernels.disjoint` and :mod:`repro.kernels.nexthop` must
reproduce exactly.

Do not "optimise" this module — its value is being the trusted slow baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

Edge = Tuple[int, int]


def adjacency_lists(num_nodes: int, edges: Sequence[Edge]) -> List[List[int]]:
    """Sorted adjacency lists, exactly as ``Topology.adjacency`` built them."""
    adj: List[List[int]] = [[] for _ in range(num_nodes)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    for lst in adj:
        lst.sort()
    return adj


def bfs_distances_python(num_nodes: int, adj: List[List[int]], source: int) -> np.ndarray:
    """The seed repository's per-source Python BFS (hop distances, -1 unreachable)."""
    dist = np.full(num_nodes, -1, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    d = 0
    while frontier:
        d += 1
        nxt: List[int] = []
        for u in frontier:
            for v in adj[u]:
                if dist[v] < 0:
                    dist[v] = d
                    nxt.append(v)
        frontier = nxt
    return dist


def distance_matrix_python(num_nodes: int, edges: Sequence[Edge]) -> np.ndarray:
    """All-pairs distances via one Python BFS per source (the legacy APSP path)."""
    adj = adjacency_lists(num_nodes, edges)
    return np.vstack([bfs_distances_python(num_nodes, adj, s) for s in range(num_nodes)])


def is_connected_python(num_nodes: int, edges: Sequence[Edge]) -> bool:
    """The seed repository's stack-based connectivity check."""
    if num_nodes <= 1:
        return True
    adj = adjacency_lists(num_nodes, edges)
    seen = [False] * num_nodes
    stack = [0]
    seen[0] = True
    count = 1
    while stack:
        u = stack.pop()
        for v in adj[u]:
            if not seen[v]:
                seen[v] = True
                count += 1
                stack.append(v)
    return count == num_nodes


def count_shortest_paths_python(num_nodes: int, edges: Sequence[Edge]) -> np.ndarray:
    """Legacy dense matrix-power shortest-path counting (first-reach bookkeeping)."""
    adj = np.zeros((num_nodes, num_nodes), dtype=np.int64)
    for u, v in edges:
        adj[u, v] = 1
        adj[v, u] = 1
    reached = np.eye(num_nodes, dtype=bool)
    counts = np.zeros((num_nodes, num_nodes), dtype=np.int64)
    power = np.eye(num_nodes, dtype=np.int64)
    for _ in range(num_nodes):
        power = power @ adj
        newly = (~reached) & (power > 0)
        counts[newly] = power[newly]
        reached |= newly
        if reached.all():
            break
    return counts


def _shortest_qualifying_path_python(adj: List[Set[int]], sources: Set[int],
                                     targets: Set[int],
                                     max_len: int) -> Optional[List[int]]:
    """Deterministic level-synchronous bounded BFS (the greedy CDP tie-break spec).

    Discovery is level-synchronous; a newly discovered vertex's parent is its
    *minimum-index* neighbour on the previous frontier; the search stops at the
    first level that reaches any target and returns the path to the
    *minimum-index* target discovered at that level (``None`` if no target is
    reachable within ``max_len`` hops).
    """
    parent: Dict[int, int] = {}
    seen: Set[int] = set(sources)
    frontier = sorted(sources)
    for _ in range(max_len):
        newly: Dict[int, int] = {}
        for u in frontier:  # ascending u: first discovery assigns the min parent
            for v in sorted(adj[u]):
                if v not in seen and v not in newly:
                    newly[v] = u
        if not newly:
            return None
        parent.update(newly)
        hits = sorted(v for v in newly if v in targets)
        if hits:
            path = [hits[0]]
            while path[-1] not in sources:
                path.append(parent[path[-1]])
            path.reverse()
            return path
        seen.update(newly)
        frontier = sorted(newly)
    return None


def greedy_disjoint_paths_python(num_nodes: int, edges: Sequence[Edge],
                                 sources: Sequence[int], targets: Sequence[int],
                                 max_len: int, mode: str = "edge",
                                 return_paths: bool = False):
    """Scalar greedy disjoint-path counting — the trusted baseline for
    :func:`repro.kernels.disjoint.batch_disjoint_paths` (one item per call).

    Repeatedly finds a shortest qualifying path with
    :func:`_shortest_qualifying_path_python` and saturates it: the path's edges are
    removed in both modes, and ``mode="vertex"`` additionally deletes the path's
    interior vertices (implicit node splitting).  Items whose source and target
    sets intersect count zero.
    """
    if max_len < 1:
        raise ValueError("max_len must be >= 1")
    src = set(int(s) for s in sources)
    dst = set(int(t) for t in targets)
    if not src or not dst:
        raise ValueError("source and target sets must be non-empty")
    adj = [set() for _ in range(num_nodes)]
    for u, v in edges:
        adj[u].add(v)
        adj[v].add(u)
    count = 0
    paths: List[List[int]] = []
    if not (src & dst):
        while True:
            path = _shortest_qualifying_path_python(adj, src, dst, max_len)
            if path is None:
                break
            count += 1
            paths.append(path)
            for u, v in zip(path, path[1:]):
                adj[u].discard(v)
                adj[v].discard(u)
            if mode == "vertex":
                for w in path[1:-1]:
                    for x in adj[w]:
                        adj[x].discard(w)
                    adj[w].clear()
    if return_paths:
        return count, paths
    return count


def next_hop_table_python(num_nodes: int, edges: Sequence[Edge],
                          distances: np.ndarray, seed) -> np.ndarray:
    """Scalar random-minimal next-hop table — the trusted baseline for
    :func:`repro.kernels.nexthop.next_hop_table`.

    One random key per directed slot of the sorted adjacency (a single
    ``rng.random`` call, CSR slot order); each source visits its neighbours in
    key-ascending order and every neighbour claims the still-unassigned
    destinations it makes minimal progress towards (``dist(v, t) == dist(s, t) -
    1`` with ``dist(s, t)`` finite and positive).  Unreachable pairs stay ``-1``;
    the diagonal maps to itself.
    """
    adj = adjacency_lists(num_nodes, edges)
    table = np.full((num_nodes, num_nodes), -1, dtype=np.int32)
    dist = np.asarray(distances, dtype=np.float64)
    keys = np.random.default_rng(seed).random(sum(len(a) for a in adj))
    starts = np.cumsum([0] + [len(a) for a in adj])
    for s in range(num_nodes):
        slots = list(range(starts[s], starts[s + 1]))
        slots.sort(key=lambda slot: keys[slot])
        for slot in slots:
            v = adj[s][slot - starts[s]]
            for t in range(num_nodes):
                want = dist[s, t] - 1.0
                if (want >= 0 and np.isfinite(want) and table[s, t] < 0
                        and dist[v, t] == want):
                    table[s, t] = v
        table[s, s] = s
    return table


def next_hop_sets_python(num_nodes: int, edges: Sequence[Edge],
                         max_len: int) -> List[List[Set[int]]]:
    """Legacy set-semiring next-hop propagation (Appendix B.A.1), kept verbatim."""
    if max_len < 1:
        raise ValueError("max_len must be >= 1")
    adj_lists = adjacency_lists(num_nodes, edges)
    current: List[List[Set[int]]] = [[set() for _ in range(num_nodes)] for _ in range(num_nodes)]
    for s in range(num_nodes):
        for v in adj_lists[s]:
            current[s][v].add(v)
    accumulated: List[List[Set[int]]] = [[set(current[s][t]) for t in range(num_nodes)]
                                         for s in range(num_nodes)]
    for _ in range(max_len - 1):
        nxt: List[List[Set[int]]] = [[set() for _ in range(num_nodes)] for _ in range(num_nodes)]
        for s in range(num_nodes):
            row = current[s]
            for mid in range(num_nodes):
                hops = row[mid]
                if not hops:
                    continue
                for t in adj_lists[mid]:
                    nxt[s][t] |= hops
        current = nxt
        for s in range(num_nodes):
            for t in range(num_nodes):
                accumulated[s][t] |= current[s][t]
    for s in range(num_nodes):
        accumulated[s][s] = set()
    return accumulated
