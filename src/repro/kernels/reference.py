"""Legacy scalar reference implementations, preserved for equivalence testing.

These are the pure-Python per-source kernels the repository shipped with before the
vectorized CSR engine in :mod:`repro.kernels.csr` replaced them on the hot paths.
They are kept verbatim (modulo operating on raw adjacency data instead of a
``Topology``) so that

* the equivalence test suite can assert, on every topology generator, that the
  vectorized kernels reproduce the legacy results bit-for-bit, and
* the benchmark suite can report the legacy-vs-kernel speedup on identical inputs.

Do not "optimise" this module — its value is being the trusted slow baseline.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

import numpy as np

Edge = Tuple[int, int]


def adjacency_lists(num_nodes: int, edges: Sequence[Edge]) -> List[List[int]]:
    """Sorted adjacency lists, exactly as ``Topology.adjacency`` built them."""
    adj: List[List[int]] = [[] for _ in range(num_nodes)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    for lst in adj:
        lst.sort()
    return adj


def bfs_distances_python(num_nodes: int, adj: List[List[int]], source: int) -> np.ndarray:
    """The seed repository's per-source Python BFS (hop distances, -1 unreachable)."""
    dist = np.full(num_nodes, -1, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    d = 0
    while frontier:
        d += 1
        nxt: List[int] = []
        for u in frontier:
            for v in adj[u]:
                if dist[v] < 0:
                    dist[v] = d
                    nxt.append(v)
        frontier = nxt
    return dist


def distance_matrix_python(num_nodes: int, edges: Sequence[Edge]) -> np.ndarray:
    """All-pairs distances via one Python BFS per source (the legacy APSP path)."""
    adj = adjacency_lists(num_nodes, edges)
    return np.vstack([bfs_distances_python(num_nodes, adj, s) for s in range(num_nodes)])


def is_connected_python(num_nodes: int, edges: Sequence[Edge]) -> bool:
    """The seed repository's stack-based connectivity check."""
    if num_nodes <= 1:
        return True
    adj = adjacency_lists(num_nodes, edges)
    seen = [False] * num_nodes
    stack = [0]
    seen[0] = True
    count = 1
    while stack:
        u = stack.pop()
        for v in adj[u]:
            if not seen[v]:
                seen[v] = True
                count += 1
                stack.append(v)
    return count == num_nodes


def count_shortest_paths_python(num_nodes: int, edges: Sequence[Edge]) -> np.ndarray:
    """Legacy dense matrix-power shortest-path counting (first-reach bookkeeping)."""
    adj = np.zeros((num_nodes, num_nodes), dtype=np.int64)
    for u, v in edges:
        adj[u, v] = 1
        adj[v, u] = 1
    reached = np.eye(num_nodes, dtype=bool)
    counts = np.zeros((num_nodes, num_nodes), dtype=np.int64)
    power = np.eye(num_nodes, dtype=np.int64)
    for _ in range(num_nodes):
        power = power @ adj
        newly = (~reached) & (power > 0)
        counts[newly] = power[newly]
        reached |= newly
        if reached.all():
            break
    return counts


def next_hop_sets_python(num_nodes: int, edges: Sequence[Edge],
                         max_len: int) -> List[List[Set[int]]]:
    """Legacy set-semiring next-hop propagation (Appendix B.A.1), kept verbatim."""
    if max_len < 1:
        raise ValueError("max_len must be >= 1")
    adj_lists = adjacency_lists(num_nodes, edges)
    current: List[List[Set[int]]] = [[set() for _ in range(num_nodes)] for _ in range(num_nodes)]
    for s in range(num_nodes):
        for v in adj_lists[s]:
            current[s][v].add(v)
    accumulated: List[List[Set[int]]] = [[set(current[s][t]) for t in range(num_nodes)]
                                         for s in range(num_nodes)]
    for _ in range(max_len - 1):
        nxt: List[List[Set[int]]] = [[set() for _ in range(num_nodes)] for _ in range(num_nodes)]
        for s in range(num_nodes):
            row = current[s]
            for mid in range(num_nodes):
                hops = row[mid]
                if not hops:
                    continue
                for t in adj_lists[mid]:
                    nxt[s][t] |= hops
        current = nxt
        for s in range(num_nodes):
            for t in range(num_nodes):
                accumulated[s][t] |= current[s][t]
    for s in range(num_nodes):
        accumulated[s][s] = set()
    return accumulated
