"""Batched greedy disjoint-path counting (the paper's CDP measure, vectorized).

The paper's ``c_l(A, B)`` statistic asks how many edge-disjoint paths of length at
most ``l`` connect router set ``A`` to router set ``B``.  Exact length-bounded
disjoint-path maximisation is NP-hard for ``l >= 4``, so — exactly like the paper —
the computation is a unit-capacity max-flow style greedy: repeatedly find a shortest
qualifying augmenting path with BFS, saturate (remove) it, and count how many
augmentations succeed.  Residual (reverse) arcs are deliberately omitted: they would
let the flow decompose into walks that violate the length bound, which is precisely
the reason the bounded problem is hard.  The greedy count is a lower bound that is
tight whenever shortest augmenting paths do not interfere (small ``l``, the regime of
every figure).

This module batches that greedy search over *many independent (source-set,
target-set) items per call*:

* Each item is restricted to its **relevant vertex set** ``R = {v : d0(A, v) +
  d0(v, B) <= max_len}`` (distances in the unmutated graph).  The length-bound
  pruning below never lets the search leave ``R`` in any greedy round — edge/vertex
  removal only increases distances — so the restriction is exact, and it shrinks the
  per-item state from ``N^2`` to ``|R|^2`` (a large constant factor on low-diameter
  topologies, where ``R`` is roughly the union of near-minimal paths).
* Every item owns a mutable dense boolean adjacency over its (padded) relevant
  vertices; one call advances every item's BFS one level per vectorized sweep — a
  flat gather of all frontier rows across the whole batch followed by one
  segment-wise ``bitwise_or.reduceat`` — so the per-level memory traffic scales
  with the actual frontier size instead of ``B * K^2``.
* Augmenting paths are reconstructed scalar-wise from the per-item depth arrays
  (a few index operations per path vertex) and saturated in place.
* Greedy rounds are **adaptively round-robined** rather than chunk-synchronous:
  once at least half of a block's items have retired (no further augmenting path),
  the survivors are compacted into a smaller block — fewer rows and, where the
  survivors' relevant sets allow, a narrower padding width — so a few
  high-diversity items no longer drag every finished item through their remaining
  sweeps.  Items are independent and survivor state is copied verbatim, so results
  are provably unchanged (pinned in ``tests/kernels/``).

Two capacity models are supported:

``mode="edge"``
    Unit *edge* capacities (the paper's CDP): each augmentation removes the
    undirected edges of its path.
``mode="vertex"``
    Unit *vertex* capacities via implicit node splitting: each augmentation removes
    its edges *and* deletes its interior vertices.  Counts vertex-disjoint paths, a
    lower bound on the Menger vertex connectivity truncated at ``max_len``.

Tie-breaking is deterministic and documented — level-synchronous BFS, the parent of
a newly discovered vertex is its *smallest-index* discovered neighbour one level
closer, and the augmenting path ends at the *smallest-index* target reached at the
first level that reaches any target.  Relevant-set restriction keeps local vertex
order ascending in global indices, so the tie-breaks agree with the full-graph
search.  :func:`repro.kernels.reference.greedy_disjoint_paths_python` implements
the identical rule scalar-wise; the equivalence suite pins the two implementations
against each other pair-for-pair on every topology generator and on random
degenerate graphs.

Length-bound pruning (from ``bounds``, per-vertex lower bounds on the remaining
distance to the targets in the unmutated graph) never changes results: a vertex
discovered at depth ``d`` with ``d + bounds[v] > max_len`` cannot lie on any
qualifying path, nor can the minimum-parent reconstruction route through it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.csr import CSRGraph

Edge = Tuple[int, int]

#: Per-chunk budget (entries) for the ``(B, K, K)`` dense boolean adjacency block.
_CHUNK_ENTRY_BUDGET = 1 << 24

_MODES = ("edge", "vertex")


def _normalize_items(items) -> List[Tuple[np.ndarray, np.ndarray]]:
    """``items`` as a list of (sources, targets) sorted unique int arrays.

    Accepts an ``(B, 2)`` array or list of ``(source, target)`` router pairs, or
    an iterable of ``(source_iterable, target_iterable)`` set items (mixing plain
    ints and iterables per element is fine).
    """
    if isinstance(items, np.ndarray) and items.ndim == 2 and items.shape[1] == 2:
        return [(items[i, :1].astype(np.int64), items[i, 1:].astype(np.int64))
                for i in range(items.shape[0])]

    def as_array(routers) -> np.ndarray:
        """One router or a router iterable as a sorted unique int64 array."""
        if isinstance(routers, (int, np.integer)):
            return np.asarray([int(routers)], dtype=np.int64)
        if not isinstance(routers, np.ndarray):
            routers = np.asarray(list(routers), dtype=np.int64)
        return np.unique(routers.astype(np.int64, copy=False))

    return [(as_array(sources), as_array(targets)) for sources, targets in items]


def _distance_rows(csr: CSRGraph,
                   vertex_sets: Sequence[np.ndarray]) -> np.ndarray:
    """Unmutated-graph distances to each item's vertex set, batched where possible.

    Single-vertex sets run as one batched BFS; genuine multi-vertex sets fall back
    to one multi-source sweep each.
    """
    n = csr.num_nodes
    rows = np.empty((len(vertex_sets), n), dtype=np.int64)
    singles = [i for i, vs in enumerate(vertex_sets) if vs.size == 1]
    if singles:
        batch = csr.bfs_distances_batch([int(vertex_sets[i][0]) for i in singles])
        rows[singles] = batch
    for i, vs in enumerate(vertex_sets):
        if vs.size != 1:
            rows[i] = csr.multi_source_distances(vs)
    return rows


def _greedy_chunk(adjs: np.ndarray, src: np.ndarray, dst: np.ndarray, max_len: int,
                  bounds: Optional[np.ndarray], mode: str, want_paths: bool,
                  vertex_maps: Optional[List[np.ndarray]],
                  vcounts: Optional[np.ndarray] = None) -> Tuple[np.ndarray, List[List[List[int]]]]:
    """Run the batched greedy search on one chunk of (locally indexed) items.

    ``adjs`` is the mutable ``(B, K, K)`` boolean adjacency block (one private copy
    per item, zero-padded beyond each item's vertex count), ``src``/``dst`` are
    ``(B, K)`` boolean masks and ``bounds`` optionally carries admissible remaining
    -distance lower bounds (``-1`` where the targets are unreachable).
    ``vertex_maps`` translates local to global indices for path output.

    Rounds are *adaptively* round-robined: whenever at least half of the block's
    items have retired (found no further augmenting path), the surviving items are
    compacted into a smaller block — fewer rows, and a narrower ``K`` when the
    per-item vertex counts (``vcounts``) of the survivors allow it.  Items are
    mutually independent and each survivor's state is copied verbatim (the padding
    sliced off is all-False/-1 by construction), so retirement is invisible to the
    results; it only stops finished items from riding along in every sweep of a
    chunk whose slowest item needs many more greedy rounds.
    """
    num_items, k = src.shape
    counts = np.zeros(num_items, dtype=np.int64)
    paths: List[List[List[int]]] = [[] for _ in range(num_items)]
    active = src.any(axis=1) & dst.any(axis=1) & ~(src & dst).any(axis=1)
    if bounds is not None:
        prune_out = (bounds < 0) | (bounds > max_len)
    #: row -> original chunk item, updated on every compaction
    orig = np.arange(num_items, dtype=np.int64)
    depth = np.empty((num_items, k), dtype=np.int64)
    flat_rows = adjs.reshape(num_items * k, k)
    while active.any():
        live = int(active.sum())
        if live <= orig.size // 2:
            # ---- retire finished items: compact survivors into a smaller block
            keep = np.flatnonzero(active)
            if vcounts is not None:
                k = max(1, int(vcounts[orig[keep]].max()))
            adjs = np.ascontiguousarray(adjs[keep, :k, :k])
            src, dst = src[keep, :k], dst[keep, :k]
            if bounds is not None:
                bounds = bounds[keep, :k]
                prune_out = prune_out[keep, :k]
            orig = orig[keep]
            active = np.ones(live, dtype=bool)
            depth = np.empty((live, k), dtype=np.int64)
            flat_rows = adjs.reshape(live * k, k)
        # ---- one batched BFS round: all active items advance level by level
        depth.fill(-1)
        depth[src] = 0
        searching = active.copy()
        chosen = np.full(orig.size, -1, dtype=np.int64)
        frontier = src & searching[:, None]
        reach = np.zeros((orig.size, k), dtype=bool)
        for level in range(1, max_len + 1):
            # Expand all items' frontiers in one flat sweep: gather every frontier
            # vertex's adjacency row across the batch, then OR the rows of each item
            # together segment-wise.  Traffic scales with the frontier size.
            item_of, vert_of = np.nonzero(frontier)
            if item_of.size == 0:
                break
            rows = flat_rows[item_of * k + vert_of]
            seg_starts = np.flatnonzero(
                np.r_[True, item_of[1:] != item_of[:-1]])
            reach.fill(False)
            reach[item_of[seg_starts]] = np.bitwise_or.reduceat(
                rows, seg_starts, axis=0)
            new = reach & (depth < 0) & searching[:, None]
            if bounds is not None:
                # depth + remaining-distance bound must fit in the length budget
                new &= ~prune_out & (bounds <= max_len - level)
            if not new.any():
                break
            depth[new] = level
            hit = new & dst
            reached = hit.any(axis=1) & searching
            if reached.any():
                # argmax over a boolean row = first True = minimum-index target
                chosen[reached] = hit[reached].argmax(axis=1)
                searching &= ~reached
            frontier = new & searching[:, None]
            if not searching.any():
                break
        # ---- reconstruct and saturate the found paths, vectorized across items:
        # walk all found items back one parent step at a time (paths are at most
        # max_len steps), then batch the edge/vertex saturation writes.
        found = np.flatnonzero(chosen >= 0)
        if found.size:
            target = chosen[found]
            length = depth[found, target]  # per-item path length (>= 1)
            max_steps = int(length.max())
            # verts[:, j] is the j-th vertex counted backwards from the target
            verts = np.full((found.size, max_steps + 1), -1, dtype=np.int64)
            verts[:, 0] = target
            for step in range(1, max_steps + 1):
                walking = np.flatnonzero(length >= step)
                items = found[walking]
                cur = verts[walking, step - 1]
                # minimum-index discovered neighbour one level closer, per item
                # (argmax over a boolean row = its first True entry)
                candidates = (adjs[items, :, cur]
                              & (depth[items] == (depth[items, cur] - 1)[:, None]))
                verts[walking, step] = candidates.argmax(axis=1)
            counts[orig[found]] += 1
            if want_paths:
                for i, b in enumerate(found):
                    item = int(orig[b])
                    local = vertex_maps[item] if vertex_maps is not None else None
                    path = [int(v) if local is None else int(local[v])
                            for v in verts[i, length[i]::-1]]
                    paths[item].append(path)
            # Saturate the path's edge arcs (both modes; in the node-splitting
            # construction every edge arc has unit capacity too, and without this a
            # direct source-target edge would be rediscovered forever in vertex mode).
            for step in range(max_steps):
                mask = length > step
                items, u, v = found[mask], verts[mask, step], verts[mask, step + 1]
                adjs[items, u, v] = False
                adjs[items, v, u] = False
            if mode == "vertex":
                # interior vertices: steps 1 .. length-1 (exclude both endpoints)
                for step in range(1, max_steps):
                    mask = length > step
                    items, w = found[mask], verts[mask, step]
                    adjs[items, w, :] = False
                    adjs[items, :, w] = False
        active = chosen >= 0
    return counts, paths


def batch_disjoint_paths(csr: CSRGraph, items, max_len: int, *, mode: str = "edge",
                         prune: bool = True, bounds: Optional[np.ndarray] = None,
                         source_bounds: Optional[np.ndarray] = None,
                         return_paths: bool = False):
    """Greedy disjoint-path counts for many independent items in one batched call.

    Parameters
    ----------
    csr:
        The (unmutated) graph; every item starts from a private copy of its
        relevant subgraph.
    items:
        Either an ``(B, 2)`` integer array of ``(source, target)`` router pairs or an
        iterable of ``(sources, targets)`` pairs of router iterables (the set form of
        the paper's ``c_l(A, B)``).  Items whose source and target sets intersect
        count zero (a shared router is an unremovable zero-length connection, which
        the paper's definition excludes).
    max_len:
        Maximum path length ``l`` in hops (``>= 1``).
    mode:
        ``"edge"`` (paper CDP, edge-disjoint) or ``"vertex"`` (vertex-disjoint via
        node splitting).  See the module docstring.
    prune:
        Apply length-bound pruning and relevant-set restriction (default).  Results
        are provably identical either way; ``False`` exists for the equivalence
        suite and for callers measuring the pruning win.
    bounds:
        Optional ``(B, N)`` per-item distances to the item's target set in the
        unmutated graph (``-1`` for unreachable).  Pass rows of the cached distance
        matrix to avoid recomputation; computed via batched BFS when omitted.
    source_bounds:
        Optional ``(B, N)`` per-item distances *from* the item's source set,
        mirroring ``bounds``; used only to build the relevant vertex sets.
    return_paths:
        If True, also return the list of augmenting vertex paths per item
        (global router indices).

    Returns
    -------
    counts, or ``(counts, paths)``:
        ``counts`` is a ``(B,)`` int64 array; ``paths[b]`` lists item ``b``'s
        disjoint vertex paths in discovery order.
    """
    if max_len < 1:
        raise ValueError("max_len must be >= 1")
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}")
    normalized = _normalize_items(items)
    num_items = len(normalized)
    n = csr.num_nodes
    counts = np.zeros(num_items, dtype=np.int64)
    all_paths: List[List[List[int]]] = [[] for _ in range(num_items)]
    if num_items == 0:
        return (counts, all_paths) if return_paths else counts
    for sources, targets in normalized:
        if sources.size == 0 or targets.size == 0:
            raise ValueError("source and target sets must be non-empty")
        for arr in (sources, targets):
            if arr[0] < 0 or arr[-1] >= n:
                raise ValueError("router index out of range")
    for name, arr in (("bounds", bounds), ("source_bounds", source_bounds)):
        if arr is not None and np.asarray(arr).shape != (num_items, n):
            raise ValueError(f"{name} must have shape ({num_items}, {n})")
    if prune:
        if bounds is None:
            bounds = _distance_rows(csr, [targets for _, targets in normalized])
        if source_bounds is None:
            source_bounds = _distance_rows(csr, [srcs for srcs, _ in normalized])
        bounds = np.asarray(bounds)
        source_bounds = np.asarray(source_bounds)
        # Relevant vertex sets: the pruned search provably never leaves them.
        relevant = ((bounds >= 0) & (source_bounds >= 0)
                    & (source_bounds + bounds <= max_len))
        vertex_lists = [np.flatnonzero(relevant[i]) for i in range(num_items)]
    else:
        everything = np.arange(n, dtype=np.int64)
        vertex_lists = [everything] * num_items
    dense = csr.dense_adjacency  # memoised on the graph; sliced per item below
    # Chunk so the padded (chunk, K, K) block stays within the entry budget; item
    # order is preserved, so results are independent of the chunking.
    pos = 0
    while pos < num_items:
        kmax = 1
        stop = pos
        while stop < num_items:
            kmax_next = max(kmax, vertex_lists[stop].size, 1)
            if stop > pos and (stop - pos + 1) * kmax_next * kmax_next > _CHUNK_ENTRY_BUDGET:
                break
            kmax = kmax_next
            stop += 1
        size = stop - pos
        adjs = np.zeros((size, kmax, kmax), dtype=bool)
        src = np.zeros((size, kmax), dtype=bool)
        dst = np.zeros((size, kmax), dtype=bool)
        chunk_bounds = np.full((size, kmax), -1, dtype=np.int64) if prune else None
        maps: List[np.ndarray] = []
        for i in range(size):
            item = pos + i
            verts = vertex_lists[item]
            maps.append(verts)
            if verts.size == 0:
                continue
            local = np.full(n, -1, dtype=np.int64)
            local[verts] = np.arange(verts.size)
            if verts.size == n:  # whole graph relevant: plain copy beats np.ix_
                adjs[i, :n, :n] = dense
            else:
                adjs[i, :verts.size, :verts.size] = dense[np.ix_(verts, verts)]
            sources, targets = normalized[item]
            src[i, local[sources][local[sources] >= 0]] = True
            dst[i, local[targets][local[targets] >= 0]] = True
            if prune:
                chunk_bounds[i, :verts.size] = bounds[item, verts]
        chunk_counts, chunk_paths = _greedy_chunk(
            adjs, src, dst, max_len, chunk_bounds, mode, return_paths, maps,
            vcounts=np.asarray([m.size for m in maps], dtype=np.int64))
        counts[pos:stop] = chunk_counts
        if return_paths:
            all_paths[pos:stop] = chunk_paths
        pos = stop
    if return_paths:
        return counts, all_paths
    return counts


