"""Vectorized path-counting kernels and distance-matrix-driven path helpers.

Shortest-path counting uses the classical observation that the number of walks of
length ``l`` between two vertices is ``(A**l)[s, t]`` and that, at ``l = dist(s, t)``,
walks and shortest paths coincide (a cycle cannot shorten a walk).  Instead of the
legacy per-entry bookkeeping, the kernels below run a dense-by-sparse matrix power
iteration and record counts with a single boolean mask per length — one masked
accumulation sweep per distance value.

The helpers at the bottom answer routing-style queries (shortest-path DAG membership,
length-bounded reachability) directly from a cached distance matrix instead of
re-running BFS per query.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from repro.kernels.csr import CSRGraph


def walk_count_matrix(csr: CSRGraph, length: int) -> np.ndarray:
    """``A**length`` — walks of exactly ``length`` steps between all vertex pairs."""
    if length < 1:
        raise ValueError("length must be >= 1")
    adj = csr.scipy_adjacency(dtype=np.int64)
    result = np.asarray(adj.todense(), dtype=np.int64)
    for _ in range(length - 1):
        result = np.asarray(adj @ result)
    return result


def shortest_path_counts(csr: CSRGraph, distances: Optional[np.ndarray] = None) -> np.ndarray:
    """Counts of *shortest* paths between all vertex pairs (0 on the diagonal).

    ``distances`` may pass a precomputed hop-distance matrix (``-1`` unreachable) to
    avoid recomputation; the counts are read off the walk-count power iteration with
    one ``distances == l`` mask per level.
    """
    n = csr.num_nodes
    if distances is None:
        distances = csr.distance_matrix()
    counts = np.zeros((n, n), dtype=np.int64)
    max_dist = int(distances.max()) if distances.size else 0
    if max_dist < 1:
        return counts
    adj = csr.scipy_adjacency(dtype=np.int64)
    power = np.eye(n, dtype=np.int64)
    for level in range(1, max_dist + 1):
        power = np.asarray(adj @ power)
        mask = distances == level
        counts[mask] = power[mask]
    return counts


def shortest_path_count_rows(csr: CSRGraph, distance_rows: np.ndarray,
                             sources: np.ndarray) -> np.ndarray:
    """Shortest-path counts restricted to the ``sources`` rows.

    ``distance_rows[i]`` must be the hop-distance row of ``sources[i]`` (``-1``
    unreachable).  Runs the same walk-count power iteration as
    :func:`shortest_path_counts` on ``len(sources)`` rows instead of all ``n`` —
    the row-granular recomputation :mod:`repro.kernels.dirtyregion` uses to patch
    only a derived graph's dirty rows.  All arithmetic is exact ``int64``, so the
    result equals the corresponding rows of the full-matrix computation bit for
    bit.
    """
    n = csr.num_nodes
    sources = np.asarray(sources, dtype=np.int64)
    distance_rows = np.asarray(distance_rows)
    counts = np.zeros((sources.size, n), dtype=np.int64)
    if sources.size == 0:
        return counts
    max_dist = int(distance_rows.max()) if distance_rows.size else 0
    if max_dist < 1:
        return counts
    adj = csr.scipy_adjacency(dtype=np.int64)
    power = np.zeros((sources.size, n), dtype=np.int64)
    power[np.arange(sources.size), sources] = 1
    for level in range(1, max_dist + 1):
        # rows of A**level for the sources: X_l = X_{l-1} A (A symmetric)
        power = np.asarray((adj @ power.T)).T
        mask = distance_rows == level
        counts[mask] = power[mask]
    return counts


def next_hop_sets_from_distances(csr: CSRGraph, distances: np.ndarray,
                                 max_len: int) -> List[List[Set[int]]]:
    """Next-hop sets for every (source, target) pair considering walks ``<= max_len``.

    A neighbour ``v`` of ``s`` starts a walk ``s -> v -> ... -> t`` of total length at
    most ``max_len`` iff ``dist(v, t) <= max_len - 1`` (the shortest walk suffices; any
    longer qualifying walk implies the shortest one also qualifies).  This reduces the
    legacy set-semiring O(n^3·deg) propagation to one boolean comparison per
    (neighbour, target) pair against the cached distance matrix.
    """
    if max_len < 1:
        raise ValueError("max_len must be >= 1")
    n = csr.num_nodes
    result: List[List[Set[int]]] = [[set() for _ in range(n)] for _ in range(n)]
    budget = max_len - 1
    for s in range(n):
        neighbours = csr.indices[csr.indptr[s]:csr.indptr[s + 1]]
        if neighbours.size == 0:
            continue
        # reach[j, t] True iff neighbour j starts a qualifying walk to t
        nd = distances[neighbours]
        reach = (nd >= 0) & (nd <= budget)
        reach[:, s] = False
        row = result[s]
        for j, v in enumerate(neighbours):
            hop = int(v)
            for t in np.flatnonzero(reach[j]):
                row[t].add(hop)
    return result


def shortest_path_dag_children(distances_to_target: np.ndarray, csr: CSRGraph,
                               node: int) -> np.ndarray:
    """Neighbours of ``node`` that lie one hop closer to the target (DAG successors)."""
    neighbours = csr.indices[csr.indptr[node]:csr.indptr[node + 1]]
    if neighbours.size == 0:
        return neighbours
    return neighbours[distances_to_target[neighbours] == distances_to_target[node] - 1]


def reachable_within(distances_row: np.ndarray, target: int, max_len: int) -> bool:
    """True iff the pair is connected by a path of at most ``max_len`` hops."""
    d = int(distances_row[target])
    return 0 <= d <= max_len
