"""Dirty-region kernel derivation: patch cached kernels instead of rebuilding them.

When the fault schedule of :mod:`repro.sim.faults` drops or restores edges mid-run,
the surviving graph differs from the cached one by a handful of edges — yet a naive
consumer would rebuild BFS rows, the distance matrix and shortest-path counts from
scratch for every epoch.  This module extends the O(delta) discipline of
:mod:`repro.sim.allocstate` one layer down into :class:`~repro.kernels.cache.PathCache`:
given a resident base entry and an edge delta, only the *dirty* rows — sources whose
distances or counts can actually change — are recomputed; clean rows are shared with
the base entry (read-only, so sharing is safe).

The row tests operate on the base entry's distance matrix ``D`` (``D[s, u]`` = hops
from ``s`` to ``u``, ``-1`` unreachable):

* **Removal** of edge ``(u, v)``: row ``s`` is dirty iff the edge lies on some
  shortest path from ``s`` — both endpoints reachable and ``|D[s,u] - D[s,v]| == 1``.
  Otherwise no shortest path from ``s`` traverses the edge, so neither distances nor
  counts from ``s`` change.  The same mask covers distances and counts.
* **Addition** of edge ``(u, v)``: distances from ``s`` change only if the new edge
  is a shortcut — exactly one endpoint reachable, or both reachable with
  ``|D[s,u] - D[s,v]| >= 2``.  Counts can additionally change when ``D[s,u] !=
  D[s,v]`` (a ``|diff| == 1`` edge adds new equal-length paths without shortening
  any), so the counts mask is a superset of the distance mask — which guarantees
  the patched distance matrix already carries correct rows everywhere counts are
  recomputed.

The tests are evaluated against the *base* matrix even for simultaneous multi-edge
deltas.  That is sound: take a minimal counterexample — a clean row ``s`` and the
shortest ``s``-path in the new graph whose length or multiplicity differs from the
base.  Its first changed edge is a delta edge incident to two vertices whose base
distances from ``s`` satisfy one of the per-edge conditions above (any prefix before
it is a base shortest path), contradicting ``s`` being clean under every per-edge
test.

Derivation keeps only what can be patched exactly: BFS rows / the distance matrix
(dirty rows re-BFSed in one batch) and shortest-path counts (dirty rows via the
exact-``int64`` :func:`repro.kernels.paths.shortest_path_count_rows`).  Randomized
products — next-hop tables draw one RNG value per CSR slot, so their streams cannot
be replayed across differing edge sets — are invalidated wholesale for the derived
graph and rebuilt lazily on demand, at layer granularity
(:func:`faulted_layer_kernels` returns the *same* cached entry for layers no failed
edge touches).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kernels.cache import (GraphKernels, PathCache, _readonly, global_cache,
                                 layer_fingerprint)
from repro.kernels.csr import CSRGraph, Edge

__all__ = ["removal_dirty_rows", "addition_dirty_rows", "dirty_row_masks",
           "derive_kernels", "faulted_kernels", "faulted_layer_kernels"]


def _normalized(edges: Iterable[Edge]) -> Set[Tuple[int, int]]:
    """Edges as a set of ``(min, max)`` int tuples."""
    return {(min(int(u), int(v)), max(int(u), int(v))) for u, v in edges}


def removal_dirty_rows(du: np.ndarray, dv: np.ndarray) -> np.ndarray:
    """Rows possibly affected by *removing* the edge with distance columns ``du, dv``."""
    return (du >= 0) & (dv >= 0) & (np.abs(du - dv) == 1)


def addition_dirty_rows(du: np.ndarray, dv: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(distance_dirty, counts_dirty)`` rows for *adding* an edge.

    ``du``/``dv`` are the base distances to the new edge's endpoints.  Rows where
    both endpoints are unreachable stay clean — the new edge cannot connect them
    to the source.
    """
    one_side = (du >= 0) != (dv >= 0)
    both = (du >= 0) & (dv >= 0)
    distance_dirty = one_side | (both & (np.abs(du - dv) >= 2))
    counts_dirty = one_side | (both & (du != dv))
    return distance_dirty, counts_dirty


def dirty_row_masks(matrix: np.ndarray, removed: Iterable[Edge],
                    added: Iterable[Edge]) -> Tuple[np.ndarray, np.ndarray]:
    """``(distance_dirty, counts_dirty)`` row masks for a simultaneous edge delta.

    ``matrix`` is the *base* graph's distance matrix; the per-edge tests (see the
    module docstring) are OR-ed over the delta.  ``counts_dirty`` always contains
    ``distance_dirty``.
    """
    n = matrix.shape[0]
    distance_dirty = np.zeros(n, dtype=bool)
    counts_dirty = np.zeros(n, dtype=bool)
    for u, v in removed:
        on_shortest = removal_dirty_rows(matrix[:, u], matrix[:, v])
        distance_dirty |= on_shortest
        counts_dirty |= on_shortest
    for u, v in added:
        d_dirty, c_dirty = addition_dirty_rows(matrix[:, u], matrix[:, v])
        distance_dirty |= d_dirty
        counts_dirty |= c_dirty
    return distance_dirty, counts_dirty


def _row_is_dirty(row: np.ndarray, removed: Iterable[Edge],
                  added: Iterable[Edge]) -> bool:
    """The per-row form of :func:`dirty_row_masks` (for single cached BFS rows)."""
    for u, v in removed:
        du, dv = int(row[u]), int(row[v])
        if du >= 0 and dv >= 0 and abs(du - dv) == 1:
            return True
    for u, v in added:
        du, dv = int(row[u]), int(row[v])
        if (du >= 0) != (dv >= 0):
            return True
        if du >= 0 and dv >= 0 and du != dv:   # counts-superset test: stay safe
            return True
    return False


def derive_kernels(base: GraphKernels, num_nodes: int, edges: Sequence[Edge],
                   fingerprint: str, removed: Iterable[Edge],
                   added: Iterable[Edge]) -> GraphKernels:
    """A :class:`GraphKernels` for ``edges``, patched from ``base`` where possible.

    Clean distance/count rows are shared with ``base`` (read-only arrays); dirty
    rows are recomputed on the new graph — batched BFS for distances, the exact
    row-restricted power iteration for counts.  The derivation statistics land in
    ``derived.invalidation`` (``rows_dirty`` of ``rows_total`` recomputed, plus
    ``counts_rows_dirty`` when counts were carried), which the dirty-region tests
    use to prove no full rebuild happened.
    """
    derived = GraphKernels(CSRGraph.from_edges(num_nodes, edges), fingerprint)
    removed = list(removed)
    added = list(added)
    stats = {"mode": "partial", "rows_total": 0, "rows_dirty": 0,
             "counts_rows_dirty": 0}
    if base._matrix is not None:
        distance_dirty, counts_dirty = dirty_row_masks(base._matrix, removed, added)
        dirty_idx = np.flatnonzero(distance_dirty)
        stats["rows_total"] = num_nodes
        stats["rows_dirty"] = int(dirty_idx.size)
        matrix = base._matrix.copy()
        if dirty_idx.size:
            matrix[dirty_idx] = derived.csr.bfs_distances_batch(dirty_idx)
        derived._matrix = _readonly(matrix)
        if dirty_idx.size == 0 and base._connected is not None:
            # identical distances everywhere -> identical reachability
            derived._connected = base._connected
        if base._counts is not None:
            from repro.kernels.paths import shortest_path_count_rows

            counts_idx = np.flatnonzero(counts_dirty)
            stats["counts_rows_dirty"] = int(counts_idx.size)
            counts = base._counts.copy()
            if counts_idx.size:
                counts[counts_idx] = shortest_path_count_rows(
                    derived.csr, matrix[counts_idx], counts_idx)
            derived._counts = _readonly(counts)
    else:
        # no matrix on the base entry: share whatever clean BFS rows it holds
        stats["rows_total"] = len(base._rows)
        for source, row in base._rows.items():
            if _row_is_dirty(row, removed, added):
                stats["rows_dirty"] += 1
            else:
                derived._rows[source] = row   # read-only: sharing is safe
    derived.invalidation = stats
    return derived


def faulted_kernels(topology, failed_edges: Iterable[Edge],
                    cache: Optional[PathCache] = None) -> GraphKernels:
    """Kernels of ``topology`` with ``failed_edges`` removed (dirty-region derived).

    With no failed edges this is exactly the topology's pristine cache entry, so a
    fail + restore cycle ends on the *same* cached object without any rebuild.
    """
    cache = cache if cache is not None else global_cache()
    failed = _normalized(failed_edges)
    if not failed:
        return cache.kernels(topology.num_routers, topology.edges,
                             fingerprint=topology.fingerprint())
    return cache.mutated(topology.num_routers, topology.edges, removed=sorted(failed),
                         base_fingerprint=topology.fingerprint())


def faulted_layer_kernels(topology, layer, failed_edges: Iterable[Edge],
                          cache: Optional[PathCache] = None) -> GraphKernels:
    """Kernels of one layer's subgraph under ``failed_edges``.

    Invalidation is per ``(layer, dirty region)``: a layer containing none of the
    failed edges returns its untouched cached entry (``is``-identical to the
    unfaulted call), while touched layers derive only their dirty rows from the
    resident layer entry.
    """
    cache = cache if cache is not None else global_cache()
    layer_edges = sorted(layer.edges)
    base_key = layer_fingerprint(topology, layer.index, layer_edges)
    touched = sorted(_normalized(failed_edges) & _normalized(layer_edges))
    if not touched:
        return cache.kernels(topology.num_routers, layer_edges, fingerprint=base_key)
    return cache.mutated(topology.num_routers, layer_edges, removed=touched,
                         base_fingerprint=base_key)
