"""Shared path cache: fingerprinted graphs -> lazily computed kernel results.

Every ``Topology`` (and every ``Layer`` subtopology) maps to a *fingerprint* — a
blake2b digest of ``(num_routers, edges)``.  The process-wide :class:`PathCache`
stores one :class:`GraphKernels` per fingerprint, each of which lazily computes and
retains BFS distance rows, the all-pairs distance matrix (int and float forms) and
shortest-path counts.  Consumers that used to re-run identical BFS/APSP work per
figure (routing schemes, diversity metrics, forwarding-table construction) now share
one computation per distinct graph.

Layer results are keyed by ``(topology fingerprint, layer index, layer edge digest)``
so two layer sets with equal edges but different provenance still share entries while
same-index layers with different sampled edges never collide.

The cache is per-process (worker processes of the parallel experiment runner each
build their own) and LRU-bounded by number of graphs; ``clear()`` resets it, which the
benchmark suite uses to measure cold-vs-warm behaviour.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Optional, Sequence

import numpy as np

from repro.kernels.csr import CSRGraph, Edge


def fingerprint_edges(num_nodes: int, edges: Sequence[Edge]) -> str:
    """Stable digest of an undirected graph given its normalized edge list."""
    h = hashlib.blake2b(digest_size=16)
    h.update(int(num_nodes).to_bytes(8, "little"))
    edge_arr = np.asarray(list(edges), dtype=np.int64)
    h.update(np.ascontiguousarray(edge_arr).tobytes())
    return h.hexdigest()


def _readonly(arr: np.ndarray) -> np.ndarray:
    arr.setflags(write=False)
    return arr


#: Per-graph bound on retained next-hop tables (one per distinct seed).  Real
#: workloads use one or two seeds per layer; the cap keeps a multi-seed sweep over
#: a single cached graph from growing one (N, N) table per seed without limit.
_MAX_NEXT_HOP_TABLES = 8


class GraphKernels:
    """Lazily computed, cached kernel results for one fingerprinted graph.

    All returned arrays are read-only views of the cache — callers needing a private
    mutable copy must ``.copy()`` them (``Topology.bfs_distances`` does, to preserve
    the legacy contract of returning fresh arrays).
    """

    def __init__(self, csr: CSRGraph, fingerprint: str) -> None:
        """Wrap ``csr`` (fingerprinted as ``fingerprint``) with empty lazy caches."""
        self.csr = csr
        self.fingerprint = fingerprint
        self._rows: Dict[int, np.ndarray] = {}
        self._matrix: Optional[np.ndarray] = None
        self._matrix_float: Optional[np.ndarray] = None
        self._counts: Optional[np.ndarray] = None
        self._connected: Optional[bool] = None
        self._next_hops: Dict[tuple, np.ndarray] = {}
        self._aux: Dict[tuple, object] = {}
        #: Derivation statistics when this entry was produced by dirty-region
        #: derivation (:mod:`repro.kernels.dirtyregion`); ``None`` for full builds.
        self.invalidation: Optional[Dict[str, object]] = None

    # -------------------------------------------------------------- distances
    def distances_from(self, source: int) -> np.ndarray:
        """Hop distances from ``source`` (read-only row, ``-1`` unreachable)."""
        source = int(source)
        if self._matrix is not None:
            return self._matrix[source]
        row = self._rows.get(source)
        if row is None:
            row = _readonly(self.csr.bfs_distances_batch([source])[0])
            self._rows[source] = row
        return row

    def distance_matrix(self) -> np.ndarray:
        """All-pairs hop distance matrix (read-only, ``-1`` unreachable)."""
        if self._matrix is None:
            self._matrix = _readonly(self.csr.distance_matrix())
            self._rows.clear()
        return self._matrix

    def pair_distance_rows(self, pairs) -> tuple:
        """``(source_rows, target_rows)`` BFS distance rows for router pairs.

        Reuses the cached APSP when it is warm — or computes it when the batch
        touches a comparable number of rows anyway — and otherwise runs two
        batched BFS sweeps over just the unique endpoints, so a small pair batch
        on a large topology never forces the full ``O(N^2)`` matrix.  The rows
        serve as admissible pruning bounds for
        :func:`repro.kernels.disjoint.batch_disjoint_paths` (removal only
        increases distances); ``source_rows[i, t]`` also reads off each pair's
        hop distance.
        """
        pair_arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        matrix = self._matrix
        if matrix is None and 2 * pair_arr.shape[0] >= self.csr.num_nodes:
            matrix = self.distance_matrix()
        if matrix is not None:
            return matrix[pair_arr[:, 0]], matrix[pair_arr[:, 1]]
        unique_src, inv_src = np.unique(pair_arr[:, 0], return_inverse=True)
        unique_dst, inv_dst = np.unique(pair_arr[:, 1], return_inverse=True)
        return (self.csr.bfs_distances_batch(unique_src)[inv_src],
                self.csr.bfs_distances_batch(unique_dst)[inv_dst])

    def distance_matrix_float(self) -> np.ndarray:
        """The distance matrix as float64 with ``inf`` for unreachable pairs."""
        if self._matrix_float is None:
            dist = self.distance_matrix()
            mat = dist.astype(np.float64)
            mat[dist < 0] = np.inf
            self._matrix_float = _readonly(mat)
        return self._matrix_float

    def multi_source_distances(self, sources: Sequence[int]) -> np.ndarray:
        """Distance to the nearest of ``sources`` per vertex (uncached, cheap)."""
        return self.csr.multi_source_distances(sources)

    # ------------------------------------------------------------ derived data
    def shortest_path_counts(self) -> np.ndarray:
        """Counts of shortest paths between all pairs (read-only)."""
        if self._counts is None:
            from repro.kernels.paths import shortest_path_counts
            self._counts = _readonly(shortest_path_counts(self.csr, self.distance_matrix()))
        return self._counts

    def next_hop_table(self, seed) -> np.ndarray:
        """The random-minimal next-hop table for ``seed`` (read-only, cached per seed).

        Built by the vectorized :func:`repro.kernels.nexthop.next_hop_table` from
        this graph's cached distance matrix.  Equal int/int-tuple seeds return the
        same cached array, so repeated forwarding builds over identical layers cost
        one kernel invocation (per seed) instead of one per build.  Seeds without a
        faithful value key (``None``, ``SeedSequence`` objects) are never cached —
        each call builds a fresh table, preserving their randomness semantics.
        """
        from repro.kernels.nexthop import next_hop_table, normalize_seed_key

        key = normalize_seed_key(seed)
        if key is None:
            return _readonly(next_hop_table(self.csr, self.distance_matrix(), seed))
        table = self._next_hops.get(key)
        if table is None:
            while len(self._next_hops) >= _MAX_NEXT_HOP_TABLES:
                self._next_hops.pop(next(iter(self._next_hops)))  # oldest seed
            table = _readonly(next_hop_table(self.csr, self.distance_matrix(), seed))
            self._next_hops[key] = table
        return table

    def is_connected(self) -> bool:
        """Connectivity of the graph (computed once)."""
        if self._connected is None:
            self._connected = self.csr.is_connected()
        return self._connected

    def aux(self, key: tuple, builder):
        """Memoised auxiliary per-graph object, built at most once per ``key``.

        Lets consumers attach derived structures that should live and die with the
        cache entry — the simulation engine stores its per-topology link space here
        (:func:`repro.sim.engine.link_space_for`), so every simulator over the same
        graph shares one build.  Values exposing an ``nbytes`` attribute count
        towards the entry's retained bytes (and hence the cache's eviction budget).
        """
        value = self._aux.get(key)
        if value is None:
            value = builder()
            self._aux[key] = value
        return value

    def retained_nbytes(self) -> int:
        """Bytes pinned by this entry's cached results (grows as results are computed)."""
        total = self.csr.indptr.nbytes + self.csr.indices.nbytes
        dense = self.csr.__dict__.get("dense_adjacency")  # memoised lazily
        if dense is not None:
            total += dense.nbytes
        total += sum(row.nbytes for row in self._rows.values())
        total += sum(table.nbytes for table in self._next_hops.values())
        total += sum(int(getattr(value, "nbytes", 0)) for value in self._aux.values())
        for arr in (self._matrix, self._matrix_float, self._counts):
            if arr is not None:
                total += arr.nbytes
        return total


class PathCache:
    """LRU cache of :class:`GraphKernels`, keyed by graph fingerprint.

    Eviction is bounded both by entry count (``maxsize``) and by retained bytes
    (``max_bytes``).  Entries grow *after* insertion as distance matrices and path
    counts are lazily computed, so the byte budget is re-checked on every insertion
    and periodically on hits (every 64th, keeping hot lookups O(1)); the most
    recently used entry is never evicted (its caller holds a reference).
    """

    def __init__(self, maxsize: int = 128, max_bytes: int = 512 << 20) -> None:
        """Create an empty cache bounded by ``maxsize`` entries / ``max_bytes`` bytes."""
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.maxsize = maxsize
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, GraphKernels]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.derive_partial = 0   # mutated(): base resident, dirty rows patched
        self.derive_full = 0      # mutated(): base evicted, fell back to full build

    def __len__(self) -> int:
        return len(self._entries)

    def _evict(self) -> None:
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        if len(self._entries) > 1:
            total = sum(e.retained_nbytes() for e in self._entries.values())
            while total > self.max_bytes and len(self._entries) > 1:
                _, evicted = self._entries.popitem(last=False)
                total -= evicted.retained_nbytes()

    def kernels(self, num_nodes: int, edges: Sequence[Edge],
                fingerprint: Optional[str] = None) -> GraphKernels:
        """The kernels for the graph ``(num_nodes, edges)``, computed at most once."""
        key = fingerprint or fingerprint_edges(num_nodes, edges)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            # entries grow lazily after insertion, so the byte budget is re-checked
            # on hits too — but only periodically, to keep hot lookups O(1)
            if self.hits % 64 == 0:
                self._evict()
            return entry
        self.misses += 1
        entry = GraphKernels(CSRGraph.from_edges(num_nodes, edges), key)
        self._entries[key] = entry
        self._evict()
        return entry

    def mutated(self, num_nodes: int, base_edges: Sequence[Edge],
                removed: Sequence[Edge] = (), added: Sequence[Edge] = (),
                base_fingerprint: Optional[str] = None) -> GraphKernels:
        """Kernels for ``base_edges`` minus ``removed`` plus ``added``.

        The dirty-region entry point (see :mod:`repro.kernels.dirtyregion`): when
        the mutated graph is already cached it is returned as-is; when the *base*
        entry is resident, the new entry is **derived** from it — only rows whose
        distances/counts the edge delta can affect are recomputed
        (``derive_partial``); when the base has been evicted, the entry is built
        from scratch (``derive_full`` — eviction racing invalidation degrades to a
        cold build, never to a wrong answer).  Edges may be given in either
        orientation.
        """
        def norm(edges):
            return sorted((min(int(u), int(v)), max(int(u), int(v)))
                          for u, v in edges)

        removed_set = set(norm(removed))
        added_set = set(norm(added))
        new_edges = sorted((set(norm(base_edges)) - removed_set) | added_set)
        key = fingerprint_edges(num_nodes, new_edges)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            if self.hits % 64 == 0:
                self._evict()
            return entry
        self.misses += 1
        base_key = base_fingerprint or fingerprint_edges(num_nodes, norm(base_edges))
        base_entry = self._entries.get(base_key)
        if base_entry is None:
            self.derive_full += 1
            entry = GraphKernels(CSRGraph.from_edges(num_nodes, new_edges), key)
            entry.invalidation = {"mode": "full"}
        else:
            from repro.kernels.dirtyregion import derive_kernels

            self.derive_partial += 1
            entry = derive_kernels(base_entry, num_nodes, new_edges, key,
                                   sorted(removed_set), sorted(added_set))
        self._entries[key] = entry
        self._evict()
        return entry

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters (cold-start state)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.derive_partial = 0
        self.derive_full = 0

    def stats(self) -> Dict[str, int]:
        """Counters snapshot: graphs held, hits, misses, derivations, retained bytes."""
        return {"graphs": len(self._entries), "hits": self.hits, "misses": self.misses,
                "derive_partial": self.derive_partial, "derive_full": self.derive_full,
                "retained_bytes": sum(e.retained_nbytes() for e in self._entries.values())}


#: Process-wide cache instance shared by all consumers.
_GLOBAL_CACHE = PathCache()


def global_cache() -> PathCache:
    """The process-wide :class:`PathCache`."""
    return _GLOBAL_CACHE


def kernels_for(topology) -> GraphKernels:
    """Kernels for a :class:`~repro.topologies.base.Topology` via the global cache."""
    return _GLOBAL_CACHE.kernels(topology.num_routers, topology.edges,
                                 fingerprint=topology.fingerprint())


def layer_fingerprint(topology, layer_index: int, layer_edges: Sequence[Edge]) -> str:
    """Cache key for one layer: (topology fingerprint, layer index, edge digest)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(topology.fingerprint().encode())
    h.update(int(layer_index).to_bytes(8, "little", signed=True))
    h.update(fingerprint_edges(topology.num_routers, layer_edges).encode())
    return h.hexdigest()


def layer_kernels(topology, layer) -> GraphKernels:
    """Kernels for one layer's subgraph, shared through the global cache.

    ``layer`` needs ``index`` and ``edges`` attributes (``repro.core.layers.Layer``).
    """
    edges = sorted(layer.edges)
    key = layer_fingerprint(topology, layer.index, edges)
    return _GLOBAL_CACHE.kernels(topology.num_routers, edges, fingerprint=key)
