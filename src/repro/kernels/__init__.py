"""Vectorized CSR graph-kernel engine with a shared path cache.

The subsystem replaces the seed repository's per-source pure-Python BFS loops with
batched NumPy kernels over a CSR adjacency, computed once per distinct graph and
shared by every consumer through a process-wide :class:`~repro.kernels.cache.PathCache`:

* :mod:`repro.kernels.csr` — the :class:`CSRGraph` representation and batched
  level-synchronous BFS (distances, APSP, multi-source, connectivity).
* :mod:`repro.kernels.paths` — shortest-path/walk counting via masked matrix-power
  accumulation, plus distance-matrix-driven routing helpers.
* :mod:`repro.kernels.disjoint` — batched greedy disjoint-path counting (the paper's
  CDP measure): many (source-set, target-set) items advance one BFS level per
  vectorized sweep, with edge- and vertex-capacity modes.
* :mod:`repro.kernels.nexthop` — vectorized random-minimal next-hop forwarding
  tables (Listing 3) built from cached distance matrices.
* :mod:`repro.kernels.cache` — graph fingerprints, :class:`GraphKernels` (lazy cached
  results per graph, including per-seed next-hop tables) and the global
  :class:`PathCache` keyed by (topology fingerprint, layer index).
* :mod:`repro.kernels.reference` — the scalar implementations (seed code plus the
  deterministic greedy-CDP / next-hop tie-break specifications), preserved as the
  trusted baseline for the equivalence tests and speedup benchmarks.
"""

from repro.kernels.cache import (
    GraphKernels,
    PathCache,
    fingerprint_edges,
    global_cache,
    kernels_for,
    layer_fingerprint,
    layer_kernels,
)
from repro.kernels.csr import CSRGraph, edges_connected, edges_connected_batch
from repro.kernels.disjoint import batch_disjoint_paths
from repro.kernels.nexthop import next_hop_table
from repro.kernels.paths import (
    next_hop_sets_from_distances,
    reachable_within,
    shortest_path_counts,
    shortest_path_dag_children,
    walk_count_matrix,
)

__all__ = [
    "CSRGraph",
    "GraphKernels",
    "PathCache",
    "batch_disjoint_paths",
    "edges_connected",
    "edges_connected_batch",
    "fingerprint_edges",
    "global_cache",
    "kernels_for",
    "layer_fingerprint",
    "layer_kernels",
    "next_hop_sets_from_distances",
    "next_hop_table",
    "reachable_within",
    "shortest_path_counts",
    "shortest_path_dag_children",
    "walk_count_matrix",
]
