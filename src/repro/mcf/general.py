"""General (edge-based) multi-commodity flow LP for maximum achievable throughput.

The maximum achievable throughput (MAT) ``T`` is the largest factor such that a
feasible multi-commodity flow routes ``demand_i * T`` for every commodity ``i``
simultaneously, subject to link capacities and flow conservation (paper §VI-A, Eqs.
1-4).  This edge-based formulation puts no restriction on which paths flow may take, so
it upper-bounds every concrete routing scheme and serves as the "optimal routing"
reference.

Solved with ``scipy.optimize.linprog`` (HiGHS) over a sparse constraint matrix.
Variables: one flow value per (commodity, directed edge) plus the throughput ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from repro.topologies.base import Topology


@dataclass(frozen=True)
class Commodity:
    """One aggregated traffic demand between two routers."""

    source: int
    target: int
    demand: float = 1.0

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError("commodity source and target must differ")
        if self.demand <= 0:
            raise ValueError("commodity demand must be positive")


@dataclass
class MaxThroughputResult:
    """LP solution summary."""

    throughput: float
    status: str
    num_variables: int
    num_constraints: int

    def __float__(self) -> float:  # pragma: no cover - convenience
        return self.throughput


def general_max_throughput(topology: Topology, commodities: Sequence[Commodity],
                           link_capacity: float = 1.0,
                           throughput_cap: Optional[float] = None) -> MaxThroughputResult:
    """Solve the edge-based MCF MAT for the given commodities.

    Parameters
    ----------
    topology:
        Router graph; every physical link provides ``link_capacity`` in each direction.
    commodities:
        Aggregated router-to-router demands.
    link_capacity:
        Capacity of each directed link (1.0 = one unit of line rate).
    throughput_cap:
        Optional upper bound on ``T`` (the paper's ``T_upperbound``); defaults to a
        loose structural bound.
    """
    if not commodities:
        raise ValueError("need at least one commodity")
    directed = topology.directed_edges()
    num_edges = len(directed)
    edge_index: Dict[Tuple[int, int], int] = {e: i for i, e in enumerate(directed)}
    k = len(commodities)
    n = topology.num_routers

    num_flow_vars = k * num_edges
    t_var = num_flow_vars  # index of the throughput variable
    num_vars = num_flow_vars + 1

    def var(i: int, e: int) -> int:
        return i * num_edges + e

    # ---- equality constraints: flow conservation -------------------------------
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_vals: List[float] = []
    eq_rhs: List[float] = []
    row = 0
    out_edges: List[List[int]] = [[] for _ in range(n)]
    in_edges: List[List[int]] = [[] for _ in range(n)]
    for (u, v), idx in edge_index.items():
        out_edges[u].append(idx)
        in_edges[v].append(idx)

    for i, commodity in enumerate(commodities):
        for vertex in range(n):
            if vertex == commodity.target:
                continue
            for e in out_edges[vertex]:
                eq_rows.append(row)
                eq_cols.append(var(i, e))
                eq_vals.append(1.0)
            for e in in_edges[vertex]:
                eq_rows.append(row)
                eq_cols.append(var(i, e))
                eq_vals.append(-1.0)
            if vertex == commodity.source:
                # net outflow - demand * T = 0
                eq_rows.append(row)
                eq_cols.append(t_var)
                eq_vals.append(-commodity.demand)
                eq_rhs.append(0.0)
            else:
                eq_rhs.append(0.0)
            row += 1
    num_eq = row

    # ---- inequality constraints: capacity --------------------------------------
    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_vals: List[float] = []
    ub_rhs: List[float] = []
    for e in range(num_edges):
        for i in range(k):
            ub_rows.append(e)
            ub_cols.append(var(i, e))
            ub_vals.append(1.0)
        ub_rhs.append(link_capacity)
    num_ub = num_edges

    a_eq = coo_matrix((eq_vals, (eq_rows, eq_cols)), shape=(num_eq, num_vars))
    a_ub = coo_matrix((ub_vals, (ub_rows, ub_cols)), shape=(num_ub, num_vars))

    objective = np.zeros(num_vars)
    objective[t_var] = -1.0  # maximise T

    if throughput_cap is None:
        total_demand = sum(c.demand for c in commodities)
        throughput_cap = num_edges * link_capacity / total_demand + 1.0
    bounds = [(0, None)] * num_flow_vars + [(0, throughput_cap)]

    result = linprog(objective, A_ub=a_ub, b_ub=np.asarray(ub_rhs),
                     A_eq=a_eq, b_eq=np.asarray(eq_rhs), bounds=bounds,
                     method="highs")
    throughput = float(result.x[t_var]) if result.status == 0 else 0.0
    return MaxThroughputResult(
        throughput=throughput,
        status=result.message if result.status != 0 else "optimal",
        num_variables=num_vars,
        num_constraints=num_eq + num_ub,
    )
