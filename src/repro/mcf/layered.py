"""Path/layer-restricted maximum achievable throughput (paper §VI-A3b, Eqs. 5-9).

When a routing scheme fixes the forwarding function of every layer, the only freedom
left to the network is how each commodity's traffic is split across its candidate
per-layer paths — flow may not "leak" between layers (Eq. 7) and the summed flow of all
layers must respect each physical link's capacity (Eq. 6).  Under deterministic
per-layer forwarding this edge formulation collapses to a *path-based* LP: one split
variable per (commodity, candidate path), which is what this module solves.

The same formulation covers every scheme the paper benchmarks — FatPaths layers, SPAIN
VLANs, PAST trees and k-shortest-paths — because each just supplies a different
candidate path set per commodity (via :class:`repro.routing.base.MultiPathRouting`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from repro.mcf.general import Commodity, MaxThroughputResult
from repro.routing.base import MultiPathRouting
from repro.topologies.base import Topology


def path_restricted_max_throughput(topology: Topology, commodities: Sequence[Commodity],
                                   routing: MultiPathRouting,
                                   link_capacity: float = 1.0,
                                   max_paths_per_commodity: Optional[int] = None
                                   ) -> MaxThroughputResult:
    """Maximum achievable throughput when each commodity may only use its candidate paths.

    Parameters
    ----------
    topology:
        Router graph (each physical link offers ``link_capacity`` per direction).
    commodities:
        Aggregated router-to-router demands.
    routing:
        Path provider: ``routing.router_paths(s, t)`` yields the usable paths.
    max_paths_per_commodity:
        Optional cap on the number of candidate paths considered per commodity.
    """
    if not commodities:
        raise ValueError("need at least one commodity")

    directed = topology.directed_edges()
    edge_index: Dict[Tuple[int, int], int] = {e: i for i, e in enumerate(directed)}

    # Collect candidate paths and build variable indices.
    var_offset: List[int] = []
    all_paths: List[List[List[int]]] = []
    total_vars = 0
    for commodity in commodities:
        paths = routing.router_paths(commodity.source, commodity.target)
        if max_paths_per_commodity is not None:
            paths = paths[:max_paths_per_commodity]
        paths = [p for p in paths if len(p) >= 2]
        var_offset.append(total_vars)
        all_paths.append(paths)
        total_vars += len(paths)

    t_var = total_vars
    num_vars = total_vars + 1

    if total_vars == 0:
        return MaxThroughputResult(throughput=0.0, status="no candidate paths",
                                   num_variables=num_vars, num_constraints=0)

    # ---- equality: per-commodity demand satisfied (sum of splits = demand * T) ----
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_vals: List[float] = []
    eq_rhs: List[float] = []
    for i, commodity in enumerate(commodities):
        paths = all_paths[i]
        if not paths:
            # an unroutable commodity pins throughput to zero via an infeasible row:
            # 0 = demand * T  ->  handled by forcing T = 0 with an explicit bound below
            continue
        for j in range(len(paths)):
            eq_rows.append(len(eq_rhs))
            eq_cols.append(var_offset[i] + j)
            eq_vals.append(1.0)
        eq_rows.append(len(eq_rhs))
        eq_cols.append(t_var)
        eq_vals.append(-commodity.demand)
        eq_rhs.append(0.0)

    unroutable = any(not paths for paths in all_paths)

    # ---- inequality: per-directed-link capacity over all commodities/paths --------
    link_rows: Dict[int, List[Tuple[int, float]]] = {}
    for i, paths in enumerate(all_paths):
        for j, path in enumerate(paths):
            col = var_offset[i] + j
            for u, v in zip(path, path[1:]):
                e = edge_index[(u, v)]
                link_rows.setdefault(e, []).append((col, 1.0))
    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_vals: List[float] = []
    ub_rhs: List[float] = []
    for row_idx, (_edge, entries) in enumerate(sorted(link_rows.items())):
        for col, val in entries:
            ub_rows.append(row_idx)
            ub_cols.append(col)
            ub_vals.append(val)
        ub_rhs.append(link_capacity)

    a_eq = coo_matrix((eq_vals, (eq_rows, eq_cols)), shape=(len(eq_rhs), num_vars))
    a_ub = coo_matrix((ub_vals, (ub_rows, ub_cols)), shape=(len(ub_rhs), num_vars))

    objective = np.zeros(num_vars)
    objective[t_var] = -1.0

    total_demand = sum(c.demand for c in commodities)
    t_upper = 0.0 if unroutable else len(directed) * link_capacity / total_demand + 1.0
    bounds = [(0, None)] * total_vars + [(0, t_upper)]

    result = linprog(objective, A_ub=a_ub if len(ub_rhs) else None,
                     b_ub=np.asarray(ub_rhs) if len(ub_rhs) else None,
                     A_eq=a_eq if len(eq_rhs) else None,
                     b_eq=np.asarray(eq_rhs) if len(eq_rhs) else None,
                     bounds=bounds, method="highs")
    throughput = float(result.x[t_var]) if result.status == 0 else 0.0
    return MaxThroughputResult(
        throughput=throughput,
        status=result.message if result.status != 0 else "optimal",
        num_variables=num_vars,
        num_constraints=len(eq_rhs) + len(ub_rhs),
    )
