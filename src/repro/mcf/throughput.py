"""TopoBench-style throughput comparison harness (paper §VI-C, Figure 9).

Derives aggregated router-to-router commodities from an endpoint traffic pattern and
evaluates the maximum achievable throughput of several routing schemes on the same
topology, including the unrestricted (optimal) MCF bound.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.mcf.general import Commodity, general_max_throughput
from repro.mcf.layered import path_restricted_max_throughput
from repro.routing.base import MultiPathRouting
from repro.topologies.base import Topology
from repro.traffic.patterns import TrafficPattern


def commodities_from_pattern(topology: Topology, pattern: TrafficPattern,
                             mapping: Optional[Sequence[int]] = None,
                             max_commodities: Optional[int] = None,
                             rng: Optional[np.random.Generator] = None) -> list[Commodity]:
    """Aggregate an endpoint pattern into router-to-router commodities.

    Endpoint pairs whose endpoints sit on the same router are dropped (they never enter
    the network).  The demand of a commodity is the number of endpoint pairs mapped to
    that router pair.  ``max_commodities`` optionally subsamples the commodity set (for
    LP tractability) — demands are kept, so relative stress is preserved.
    """
    counter: Counter = Counter()
    for s, t in pattern.pairs:
        if mapping is not None:
            s, t = mapping[s], mapping[t]
        rs = topology.router_of_endpoint(int(s))
        rt = topology.router_of_endpoint(int(t))
        if rs != rt:
            counter[(rs, rt)] += 1
    commodities = [Commodity(source=s, target=t, demand=float(d))
                   for (s, t), d in sorted(counter.items())]
    if max_commodities is not None and len(commodities) > max_commodities:
        rng = rng or np.random.default_rng(0)
        idx = rng.choice(len(commodities), size=max_commodities, replace=False)
        commodities = [commodities[int(i)] for i in sorted(idx)]
    return commodities


def scheme_max_throughput(topology: Topology, commodities: Sequence[Commodity],
                          routing: Optional[MultiPathRouting],
                          link_capacity: float = 1.0) -> float:
    """MAT of one scheme; ``routing=None`` solves the unrestricted (optimal) MCF."""
    if not commodities:
        return 0.0
    if routing is None:
        return general_max_throughput(topology, commodities, link_capacity).throughput
    return path_restricted_max_throughput(topology, commodities, routing,
                                          link_capacity).throughput


def compare_schemes(topology: Topology, pattern: TrafficPattern,
                    schemes: Mapping[str, Optional[MultiPathRouting]],
                    mapping: Optional[Sequence[int]] = None,
                    max_commodities: Optional[int] = 120,
                    link_capacity: float = 1.0,
                    rng: Optional[np.random.Generator] = None) -> Dict[str, float]:
    """Maximum achievable throughput per scheme for one pattern on one topology.

    ``schemes`` maps display names to path providers; a value of ``None`` requests the
    unrestricted MCF bound.  Returns ``{scheme name: T}``.
    """
    commodities = commodities_from_pattern(topology, pattern, mapping=mapping,
                                           max_commodities=max_commodities, rng=rng)
    results: Dict[str, float] = {}
    for name, routing in schemes.items():
        results[name] = scheme_max_throughput(topology, commodities, routing, link_capacity)
    return results
