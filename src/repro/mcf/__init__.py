"""Multi-commodity-flow linear programs for maximum achievable throughput (paper §VI).

* :mod:`repro.mcf.general` — the classic edge-based MCF formulation (Eqs. 1-4 plus a
  maximised throughput factor ``T``): an upper bound assuming perfectly fluid routing.
* :mod:`repro.mcf.layered` — the path/layer-restricted formulation (Eqs. 5-9): flow may
  only use the candidate paths a routing scheme exposes (FatPaths layers, SPAIN VLANs,
  PAST trees, k shortest paths), with no leaking between layers.
* :mod:`repro.mcf.throughput` — the TopoBench-style harness: derive commodities from a
  traffic pattern and compare schemes' maximum achievable throughput (Figure 9).
"""

from repro.mcf.general import Commodity, general_max_throughput
from repro.mcf.layered import path_restricted_max_throughput
from repro.mcf.throughput import (
    commodities_from_pattern,
    compare_schemes,
    scheme_max_throughput,
)

__all__ = [
    "Commodity",
    "general_max_throughput",
    "path_restricted_max_throughput",
    "commodities_from_pattern",
    "compare_schemes",
    "scheme_max_throughput",
]
