"""Single-crossbar "star" baseline.

The paper's Appendix D uses a star topology — one crossbar switch with all endpoints
attached — as an upper bound on performance (no inter-switch links, so no topology
induced congestion), to characterise pure transport/flow-control effects.

At the router-graph level this is a single router with ``p = N`` endpoints.
"""

from __future__ import annotations

from repro.topologies.base import Topology


def star(num_endpoints: int) -> Topology:
    """A single crossbar hosting ``num_endpoints`` endpoints."""
    if num_endpoints < 1:
        raise ValueError("star needs at least one endpoint")
    return Topology(
        name=f"Star(N={num_endpoints})",
        num_routers=1,
        edges=(),
        concentration=num_endpoints,
        diameter_hint=0,
        meta={"family": "star"},
    )
