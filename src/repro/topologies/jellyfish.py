"""Jellyfish topology — Singla et al. (NSDI'12): a random regular router graph.

The paper uses "homogeneous" Jellyfish instances: random ``k'``-regular graphs over
``Nr`` routers with ``p`` endpoints per router.  Because Jellyfish is fully flexible,
the paper pairs every deterministic topology X with an *equivalent Jellyfish* (X-JF)
built from identical ``Nr``, ``k'`` and ``p`` — provided here by
:func:`equivalent_jellyfish`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.topologies.base import Topology


def _random_regular_edges(num_routers: int, degree: int,
                          rng: np.random.Generator, max_attempts: int = 50) -> List[Tuple[int, int]]:
    """Sample a random ``degree``-regular simple graph (pairing model with repair).

    Pairs port "stubs" uniformly at random; conflicting pairs (self loops, parallel
    edges) are repaired by double-edge swaps against randomly chosen existing edges,
    which is the standard Jellyfish construction.  NetworkX's generator is used as a
    final fallback for the rare degenerate case the repair loop cannot fix.
    """
    if degree >= num_routers:
        raise ValueError("degree must be < num_routers for a simple graph")
    if (num_routers * degree) % 2 != 0:
        raise ValueError("num_routers * degree must be even")

    for _ in range(max_attempts):
        stubs = np.repeat(np.arange(num_routers), degree)
        rng.shuffle(stubs)
        pairs = [(int(u), int(v)) for u, v in stubs.reshape(-1, 2)]
        edge_set = set()
        good: List[Tuple[int, int]] = []
        bad: List[Tuple[int, int]] = []
        for u, v in pairs:
            key = (u, v) if u < v else (v, u)
            if u == v or key in edge_set:
                bad.append((u, v))
            else:
                edge_set.add(key)
                good.append(key)
        # Repair conflicting pairs by swapping with random accepted edges.
        repaired = True
        for u, v in bad:
            fixed = False
            for _ in range(200):
                if not good:
                    break
                idx = int(rng.integers(len(good)))
                a, b = good[idx]
                # Propose replacing {a,b} and the broken pair (u,v) with {u,a} and {v,b}.
                e1 = (u, a) if u < a else (a, u)
                e2 = (v, b) if v < b else (b, v)
                if u == a or v == b or e1 in edge_set or e2 in edge_set or e1 == e2:
                    continue
                edge_set.discard((a, b))
                edge_set.add(e1)
                edge_set.add(e2)
                good[idx] = e1
                good.append(e2)
                fixed = True
                break
            if not fixed:
                repaired = False
                break
        if repaired:
            return sorted(edge_set)

    # Fallback: NetworkX implements a configuration-model sampler with its own repair.
    import networkx as nx

    seed = int(rng.integers(2**31 - 1))
    graph = nx.random_regular_graph(degree, num_routers, seed=seed)
    return [(min(u, v), max(u, v)) for u, v in graph.edges()]


def jellyfish(num_routers: int, network_radix: int, concentration: int,
              seed: Optional[int] = None, name: Optional[str] = None) -> Topology:
    """Random ``network_radix``-regular Jellyfish over ``num_routers`` routers."""
    rng = np.random.default_rng(seed)
    edges = _random_regular_edges(num_routers, network_radix, rng)
    topo = Topology(
        name=name or f"JF(Nr={num_routers},k'={network_radix})",
        num_routers=num_routers,
        edges=edges,
        concentration=concentration,
        diameter_hint=None,
        meta={"family": "jellyfish", "network_radix": network_radix, "seed": seed},
    )
    if not topo.is_connected():
        # A disconnected random regular graph is extremely unlikely for the degrees used
        # here; retry deterministically with a derived seed.
        return jellyfish(num_routers, network_radix, concentration,
                         seed=(seed or 0) + 10_007, name=name)
    return topo


def equivalent_jellyfish(reference: Topology, seed: Optional[int] = None) -> Topology:
    """Jellyfish built "from the same routers" as ``reference`` (the paper's X-JF).

    For topologies where every router hosts endpoints this means identical
    ``Nr``, ``k'`` and ``p``.  For fat trees (where only edge switches host endpoints
    and ``N/Nr`` is fractional) the paper instead keeps the switch radix ``k`` and
    picks ``p`` close to ``N/Nr`` with ``k' = k - p`` (Appendix A.F).
    """
    nr = reference.num_routers
    if len(reference.endpoint_routers) == reference.num_routers:
        k_prime = reference.network_radix
        concentration = reference.concentration
    else:
        switch_radix = int(reference.meta.get("radix", reference.network_radix))
        concentration = max(1, round(reference.num_endpoints / nr))
        k_prime = max(2, switch_radix - concentration)
    if (nr * k_prime) % 2 != 0:
        # Regular graphs need an even degree sum; drop one unit of radix if necessary.
        k_prime -= 1
    return jellyfish(
        nr,
        k_prime,
        concentration,
        seed=seed,
        name=f"{reference.name}-JF",
    )
