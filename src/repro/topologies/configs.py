"""Comparable-cost topology configurations (paper §II-B and §VII-A).

The paper compares topologies in *size classes* — small (N ~ 1k), medium (N ~ 10k),
large (N ~ 100k) — picking, for each class, configurations that use similar amounts of
hardware (similar N, similar edge density) so that construction costs match.  The
concentration rule is ``p = ceil(k'/D)`` which (for random uniform traffic) maximises
throughput while minimising cost.

This module provides

* :func:`default_concentration` — the ``p = ceil(k'/D)`` rule,
* per-class parameter choices for every topology (mirroring Table IV / Table V),
* :func:`build` — construct a topology by short name ("SF", "DF", ...) and size class,
* :func:`comparable_configurations` — all topologies of one class, optionally with their
  equivalent Jellyfish instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.topologies.base import Topology
from repro.topologies.complete import complete_graph
from repro.topologies.dragonfly import dragonfly
from repro.topologies.fattree import fat_tree
from repro.topologies.hyperx import hyperx
from repro.topologies.jellyfish import equivalent_jellyfish
from repro.topologies.slimfly import slim_fly
from repro.topologies.xpander import xpander


class SizeClass(str, Enum):
    """Paper size classes; ``TINY`` is an extra class for fast tests/examples."""

    TINY = "tiny"        # N ~ 100          (not in the paper; unit tests, examples)
    SMALL = "small"      # N ~ 1,000
    MEDIUM = "medium"    # N ~ 10,000
    LARGE = "large"      # N ~ 100,000


def default_concentration(network_radix: int, diameter: int) -> int:
    """The paper's concentration rule ``p = ceil(k' / D)``."""
    if diameter < 1:
        raise ValueError("diameter must be >= 1")
    return max(1, math.ceil(network_radix / diameter))


@dataclass(frozen=True)
class TopologySpec:
    """Constructor parameters for one topology in one size class."""

    short_name: str
    size_class: SizeClass
    params: Dict[str, int]


# Parameter choices per class.  Chosen so that, within a class, endpoint counts are
# within roughly +-30% of each other (the paper allows ~10%, which is not always
# attainable with small parameter spaces; EXPERIMENTS.md records the actual Ns).
_SPECS: Dict[Tuple[str, SizeClass], Dict[str, int]] = {
    # ---- tiny (N ~ 100-200): for tests and quick examples -------------------
    ("SF", SizeClass.TINY): {"q": 5},
    ("DF", SizeClass.TINY): {"p": 3},
    ("HX2", SizeClass.TINY): {"dimensions": 2, "side": 6},
    ("HX3", SizeClass.TINY): {"dimensions": 3, "side": 4},
    ("XP", SizeClass.TINY): {"network_radix": 8},
    ("FT3", SizeClass.TINY): {"radix": 8, "oversubscription": 2},
    ("CLIQUE", SizeClass.TINY): {"num_routers": 16},
    # ---- small (N ~ 1,000) ---------------------------------------------------
    ("SF", SizeClass.SMALL): {"q": 9},              # N = 1,134
    ("DF", SizeClass.SMALL): {"p": 4},              # N = 1,056
    ("HX2", SizeClass.SMALL): {"dimensions": 2, "side": 10},   # N = 900
    ("HX3", SizeClass.SMALL): {"dimensions": 3, "side": 6},    # N = 1,080
    ("XP", SizeClass.SMALL): {"network_radix": 12},             # N = 936
    ("FT3", SizeClass.SMALL): {"radix": 12, "oversubscription": 2},  # N = 864
    ("CLIQUE", SizeClass.SMALL): {"num_routers": 32},            # N = 992
    # ---- medium (N ~ 10,000): the paper's headline class --------------------
    ("SF", SizeClass.MEDIUM): {"q": 19},          # Nr=722, k'=29   (Table IV)
    ("DF", SizeClass.MEDIUM): {"p": 8},           # Nr=2064, k'=23  (Table IV)
    ("HX2", SizeClass.MEDIUM): {"dimensions": 2, "side": 24},
    ("HX3", SizeClass.MEDIUM): {"dimensions": 3, "side": 11},  # Nr=1331, k'=30 (Table IV)
    ("XP", SizeClass.MEDIUM): {"network_radix": 32},           # Nr=1056, k'=32 (Table IV)
    ("FT3", SizeClass.MEDIUM): {"radix": 28, "oversubscription": 2},  # N = 10,976
    ("CLIQUE", SizeClass.MEDIUM): {"num_routers": 101},        # Table IV clique
    # ---- large (N ~ 100,000) -------------------------------------------------
    ("SF", SizeClass.LARGE): {"q": 41},                           # N = 104,222
    ("DF", SizeClass.LARGE): {"p": 12},                           # N = 83,232
    ("HX2", SizeClass.LARGE): {"dimensions": 2, "side": 44},      # N = 83,248
    ("HX3", SizeClass.LARGE): {"dimensions": 3, "side": 18},      # N = 99,144
    ("XP", SizeClass.LARGE): {"network_radix": 56},               # N = 89,376
    ("FT3", SizeClass.LARGE): {"radix": 58, "oversubscription": 2},  # N = 97,556
    ("CLIQUE", SizeClass.LARGE): {"num_routers": 317},            # N = 100,172
}

#: Topologies evaluated throughout the paper, in presentation order.
PAPER_TOPOLOGIES: Tuple[str, ...] = ("SF", "DF", "HX3", "XP", "FT3")


def available_names() -> List[str]:
    """Short names accepted by :func:`build`."""
    return sorted({name for name, _ in _SPECS})


def build(short_name: str, size_class: SizeClass = SizeClass.MEDIUM,
          seed: Optional[int] = 0) -> Topology:
    """Construct a topology by short name and size class.

    Short names: ``SF``, ``DF``, ``HX2``, ``HX3``, ``XP``, ``FT3``, ``CLIQUE``.
    Concentration follows the per-topology defaults described in the paper's
    Appendix A (which coincide with ``p = ceil(k'/D)`` for the diameter-2/3 networks).
    """
    size_class = SizeClass(size_class)
    key = (short_name.upper(), size_class)
    if key not in _SPECS:
        raise KeyError(f"unknown topology/class combination {key}; "
                       f"available topologies: {available_names()}")
    params = dict(_SPECS[key])
    name = short_name.upper()
    if name == "SF":
        return slim_fly(**params)
    if name == "DF":
        return dragonfly(**params)
    if name in ("HX2", "HX3"):
        return hyperx(**params)
    if name == "XP":
        return xpander(**params, seed=seed)
    if name == "FT3":
        return fat_tree(**params)
    if name == "CLIQUE":
        return complete_graph(**params)
    raise KeyError(name)  # pragma: no cover - guarded above


def comparable_configurations(size_class: SizeClass = SizeClass.MEDIUM,
                              topologies: Optional[List[str]] = None,
                              include_jellyfish: bool = False,
                              seed: int = 0) -> Dict[str, Topology]:
    """All paper topologies of one size class, keyed by short name.

    With ``include_jellyfish=True`` each deterministic topology X additionally gets an
    equivalent Jellyfish entry ``"X-JF"`` built from identical Nr, k', p.
    """
    names = topologies or list(PAPER_TOPOLOGIES)
    out: Dict[str, Topology] = {}
    for name in names:
        topo = build(name, size_class, seed=seed)
        out[name] = topo
        if include_jellyfish and name != "CLIQUE":
            out[f"{name}-JF"] = equivalent_jellyfish(topo, seed=seed + 1)
    return out


def summary_row(topology: Topology) -> Dict[str, object]:
    """One row of the paper's Table V-style parameter summary."""
    return {
        "name": topology.name,
        "Nr": topology.num_routers,
        "N": topology.num_endpoints,
        "k_prime": topology.network_radix,
        "p": topology.concentration,
        "k": topology.router_radix,
        "diameter_hint": topology.diameter_hint,
        "edges": topology.num_edges,
        "edge_density": round(topology.edge_density(), 3),
    }
