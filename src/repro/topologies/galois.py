"""Finite-field arithmetic GF(q) for the Slim Fly (MMS) construction.

Slim Fly's MMS graphs are defined over a Galois field GF(q) where ``q`` is a prime
power with ``q = 4w + delta``, ``delta in {-1, 0, 1}``.  Prime fields use plain
modular arithmetic; prime-power fields GF(p^m) are represented as polynomials over
GF(p) modulo an irreducible polynomial found by exhaustive search (fields used for
network sizing are tiny, so the search is instantaneous).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


def is_prime(n: int) -> bool:
    """Deterministic trial-division primality test (fields here are tiny)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    i = 3
    while i * i <= n:
        if n % i == 0:
            return False
        i += 2
    return True


def factor_prime_power(q: int) -> Tuple[int, int]:
    """Return ``(p, m)`` with ``q == p**m`` and ``p`` prime, or raise ValueError."""
    if q < 2:
        raise ValueError(f"{q} is not a prime power")
    for p in range(2, q + 1):
        if not is_prime(p):
            continue
        if q % p:
            continue
        m = 0
        value = q
        while value % p == 0:
            value //= p
            m += 1
        if value == 1:
            return p, m
        raise ValueError(f"{q} is not a prime power")
    raise ValueError(f"{q} is not a prime power")


def is_prime_power(q: int) -> bool:
    """True if ``q`` is a prime power."""
    try:
        factor_prime_power(q)
        return True
    except ValueError:
        return False


Poly = Tuple[int, ...]


def _poly_trim(coeffs: Sequence[int]) -> Poly:
    coeffs = list(coeffs)
    while coeffs and coeffs[-1] == 0:
        coeffs.pop()
    return tuple(coeffs)


def _poly_add(a: Poly, b: Poly, p: int) -> Poly:
    n = max(len(a), len(b))
    out = [0] * n
    for i in range(n):
        ai = a[i] if i < len(a) else 0
        bi = b[i] if i < len(b) else 0
        out[i] = (ai + bi) % p
    return _poly_trim(out)


def _poly_mul(a: Poly, b: Poly, p: int) -> Poly:
    if not a or not b:
        return ()
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            out[i + j] = (out[i + j] + ai * bj) % p
    return _poly_trim(out)


def _poly_mod(a: Poly, mod: Poly, p: int) -> Poly:
    a_list = list(a)
    deg_mod = len(mod) - 1
    lead_inv = pow(mod[-1], p - 2, p)
    while len(a_list) - 1 >= deg_mod and a_list:
        shift = len(a_list) - 1 - deg_mod
        factor = (a_list[-1] * lead_inv) % p
        for i, c in enumerate(mod):
            a_list[shift + i] = (a_list[shift + i] - factor * c) % p
        while a_list and a_list[-1] == 0:
            a_list.pop()
    return _poly_trim(a_list)


def _find_irreducible(p: int, m: int) -> Poly:
    """Find a monic irreducible degree-``m`` polynomial over GF(p) by search.

    Irreducibility is checked by verifying the polynomial has no roots and is not
    divisible by any lower-degree monic polynomial (brute force; m <= 4 in practice).
    """
    if m == 1:
        return (0, 1)

    def all_polys(degree: int) -> List[Poly]:
        polys: List[Poly] = []
        total = p ** degree
        for code in range(total):
            coeffs = []
            c = code
            for _ in range(degree):
                coeffs.append(c % p)
                c //= p
            coeffs.append(1)  # monic
            polys.append(tuple(coeffs))
        return polys

    def divides(div: Poly, poly: Poly) -> bool:
        return len(_poly_mod(poly, div, p)) == 0

    low_degree_divisors: List[Poly] = []
    for d in range(1, m // 2 + 1):
        low_degree_divisors.extend(all_polys(d))

    for candidate in all_polys(m):
        if all(not divides(div, candidate) for div in low_degree_divisors):
            return candidate
    raise RuntimeError(f"no irreducible polynomial of degree {m} over GF({p})")  # pragma: no cover


@dataclass
class GaloisField:
    """Arithmetic in GF(q) with elements encoded as integers ``0 .. q-1``.

    Prime-power fields encode an element ``sum(c_i * p**i)`` for the polynomial with
    coefficients ``c_i``.  The class exposes just what the MMS construction needs:
    add, sub, mul, and a primitive element (generator of the multiplicative group).
    """

    q: int

    def __post_init__(self) -> None:
        self.p, self.m = factor_prime_power(self.q)
        self._modulus = _find_irreducible(self.p, self.m) if self.m > 1 else (0, 1)
        self._mul_table: List[List[int]] | None = None

    # --------------------------------------------------------------- encoding
    def _to_poly(self, x: int) -> Poly:
        coeffs = []
        while x:
            coeffs.append(x % self.p)
            x //= self.p
        return _poly_trim(coeffs)

    def _from_poly(self, poly: Poly) -> int:
        value = 0
        for c in reversed(poly):
            value = value * self.p + c
        return value

    # -------------------------------------------------------------- operations
    def add(self, a: int, b: int) -> int:
        if self.m == 1:
            return (a + b) % self.p
        return self._from_poly(_poly_add(self._to_poly(a), self._to_poly(b), self.p))

    def neg(self, a: int) -> int:
        if self.m == 1:
            return (-a) % self.p
        poly = tuple((-c) % self.p for c in self._to_poly(a))
        return self._from_poly(_poly_trim(poly))

    def sub(self, a: int, b: int) -> int:
        return self.add(a, self.neg(b))

    def mul(self, a: int, b: int) -> int:
        if self.m == 1:
            return (a * b) % self.p
        if self._mul_table is not None:
            return self._mul_table[a][b]
        prod = _poly_mul(self._to_poly(a), self._to_poly(b), self.p)
        return self._from_poly(_poly_mod(prod, self._modulus, self.p))

    def pow(self, a: int, e: int) -> int:
        result = 1
        base = a
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result

    def build_mul_table(self) -> None:
        """Precompute the q x q multiplication table (speeds up MMS generation)."""
        if self.m == 1 or self._mul_table is not None:
            return
        table = [[0] * self.q for _ in range(self.q)]
        for a in range(self.q):
            pa = self._to_poly(a)
            for b in range(a, self.q):
                prod = _poly_mul(pa, self._to_poly(b), self.p)
                val = self._from_poly(_poly_mod(prod, self._modulus, self.p))
                table[a][b] = val
                table[b][a] = val
        self._mul_table = table

    # --------------------------------------------------------------- structure
    def elements(self) -> range:
        return range(self.q)

    def primitive_element(self) -> int:
        """A generator of the multiplicative group GF(q)*."""
        order = self.q - 1
        for candidate in range(2, self.q):
            seen = set()
            x = 1
            for _ in range(order):
                x = self.mul(x, candidate)
                seen.add(x)
            if len(seen) == order:
                return candidate
        raise RuntimeError(f"no primitive element found for GF({self.q})")  # pragma: no cover
