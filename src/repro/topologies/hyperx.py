"""HyperX (Hamming graph) topologies — Ahn et al. (SC'09).

A *regular* HyperX arranges routers into an ``L``-dimensional array with ``S`` routers
per dimension and connects every pair of routers that differ in exactly one coordinate
(a clique along each 1-dimensional row).  Network radix is ``k' = L * (S - 1)`` and the
diameter is ``L``.

Special cases: ``L = 1`` is a complete graph; ``L = 2`` is the Flattened Butterfly used
in the paper; ``L = 3`` is the "HX3" cube variant.  The paper uses concentration
``p = ceil(k'/L)`` (Table V).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.topologies.base import Topology


def hyperx(dimensions: int, side: int, concentration: Optional[int] = None) -> Topology:
    """Regular HyperX with ``dimensions`` = L and ``side`` = S routers per dimension."""
    if dimensions < 1:
        raise ValueError("dimensions must be >= 1")
    if side < 2:
        raise ValueError("side must be >= 2")
    num_routers = side ** dimensions
    network_radix = dimensions * (side - 1)
    if concentration is None:
        concentration = math.ceil(network_radix / dimensions)

    def coords(router: int) -> Tuple[int, ...]:
        cs = []
        for _ in range(dimensions):
            cs.append(router % side)
            router //= side
        return tuple(cs)

    def rid(cs: Tuple[int, ...]) -> int:
        value = 0
        for c in reversed(cs):
            value = value * side + c
        return value

    edges: List[Tuple[int, int]] = []
    for router in range(num_routers):
        cs = coords(router)
        for dim in range(dimensions):
            for other in range(cs[dim] + 1, side):
                peer = list(cs)
                peer[dim] = other
                edges.append((router, rid(tuple(peer))))

    return Topology(
        name=f"HX{dimensions}(S={side})",
        num_routers=num_routers,
        edges=edges,
        concentration=concentration,
        diameter_hint=dimensions,
        meta={
            "family": "hyperx",
            "dimensions": dimensions,
            "side": side,
            "network_radix": network_radix,
        },
    )


def flattened_butterfly(side: int, concentration: Optional[int] = None) -> Topology:
    """Two-dimensional HyperX, i.e. a Flattened Butterfly (diameter 2)."""
    return hyperx(2, side, concentration)
