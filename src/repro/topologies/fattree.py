"""Three-stage fat tree (folded Clos) — Leiserson'96 / Al-Fares'08 style, as used in the paper.

Built from radix-``k`` switches (``k`` even):

* ``k`` pods, each with ``k/2`` edge switches and ``k/2`` aggregation switches;
* every edge switch connects to every aggregation switch in its pod;
* ``(k/2)**2`` core switches; aggregation switch ``j`` of every pod connects to core
  switches ``j*k/2 .. (j+1)*k/2 - 1``;
* each edge switch hosts ``k/2`` endpoints (``oversubscription`` multiplies that, the
  paper uses 2x-oversubscribed fat trees for the fair-cost comparison).

Totals: ``Nr = 5k^2/4`` routers, ``N = oversubscription * k^3/4`` endpoints, diameter 4
(between endpoints in different pods).  Only edge switches host endpoints.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.topologies.base import Topology


def fat_tree(radix: int, oversubscription: int = 1) -> Topology:
    """Three-stage fat tree from radix-``radix`` switches (``radix`` must be even)."""
    if radix < 2 or radix % 2 != 0:
        raise ValueError("radix must be an even integer >= 2")
    if oversubscription < 1:
        raise ValueError("oversubscription must be >= 1")
    half = radix // 2
    pods = radix
    num_edge = pods * half
    num_agg = pods * half
    num_core = half * half
    num_routers = num_edge + num_agg + num_core

    # Router id layout: [edge switches][aggregation switches][core switches].
    def edge_id(pod: int, index: int) -> int:
        return pod * half + index

    def agg_id(pod: int, index: int) -> int:
        return num_edge + pod * half + index

    def core_id(index: int) -> int:
        return num_edge + num_agg + index

    edges: List[Tuple[int, int]] = []
    for pod in range(pods):
        for e in range(half):
            for a in range(half):
                edges.append((edge_id(pod, e), agg_id(pod, a)))
    for pod in range(pods):
        for a in range(half):
            for c in range(half):
                edges.append((agg_id(pod, a), core_id(a * half + c)))

    endpoint_routers = [edge_id(pod, e) for pod in range(pods) for e in range(half)]
    concentration = half * oversubscription

    return Topology(
        name=f"FT3(k={radix}{', 2x' if oversubscription == 2 else ''})",
        num_routers=num_routers,
        edges=edges,
        concentration=concentration,
        endpoint_routers=endpoint_routers,
        diameter_hint=4,
        meta={
            "family": "fattree",
            "radix": radix,
            "pods": pods,
            "oversubscription": oversubscription,
            "network_radix": radix,
            "num_edge": num_edge,
            "num_agg": num_agg,
            "num_core": num_core,
        },
    )


def fat_tree_level(topology: Topology, router: int) -> str:
    """Return ``'edge'``, ``'agg'`` or ``'core'`` for a router of a fat tree."""
    if topology.meta.get("family") != "fattree":
        raise ValueError("topology is not a fat tree")
    num_edge = int(topology.meta["num_edge"])
    num_agg = int(topology.meta["num_agg"])
    if router < num_edge:
        return "edge"
    if router < num_edge + num_agg:
        return "agg"
    return "core"
