"""Topology generators for the FatPaths reproduction.

Every topology produces a :class:`~repro.topologies.base.Topology`: an undirected
router graph together with a *concentration* ``p`` (endpoints attached per router).
Topologies follow the paper's §II-B / Appendix A descriptions:

* Slim Fly (MMS construction, diameter 2)
* Dragonfly ("balanced" variant, diameter 3)
* Jellyfish (random regular graph)
* Xpander (lift construction)
* HyperX / Flattened Butterfly (Hamming graphs) and the complete graph
* three-stage fat tree
* a single-crossbar "star" used as a TCP baseline

:mod:`repro.topologies.configs` provides "fair comparison" configurations: topology
instances of comparable size/cost for the paper's size classes.
"""

from repro.topologies.base import Topology
from repro.topologies.complete import complete_graph
from repro.topologies.dragonfly import dragonfly
from repro.topologies.fattree import fat_tree
from repro.topologies.hyperx import flattened_butterfly, hyperx
from repro.topologies.jellyfish import equivalent_jellyfish, jellyfish
from repro.topologies.slimfly import slim_fly
from repro.topologies.star import star
from repro.topologies.xpander import xpander
from repro.topologies.configs import (
    SizeClass,
    build,
    comparable_configurations,
    default_concentration,
)

__all__ = [
    "Topology",
    "complete_graph",
    "dragonfly",
    "fat_tree",
    "flattened_butterfly",
    "hyperx",
    "jellyfish",
    "equivalent_jellyfish",
    "slim_fly",
    "star",
    "xpander",
    "SizeClass",
    "build",
    "comparable_configurations",
    "default_concentration",
]
