"""Core network model: routers, inter-router links and attached endpoints.

The paper (§II-A) models the interconnect as an undirected graph ``G = (V, E)`` over
routers only; endpoints are attached implicitly, ``p`` per router (the *concentration*).
``k'`` is the network radix (router-to-router channels) and ``k = k' + p`` the full
router radix.  This module provides that model as :class:`Topology`.

Graph metrics (BFS distances, connectivity, diameter, average path length) are
computed by the vectorized CSR engine in :mod:`repro.kernels` and shared across all
consumers through the process-wide path cache, keyed by :meth:`Topology.fingerprint`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

Edge = Tuple[int, int]


@dataclass
class Topology:
    """An undirected router-level network with ``p`` endpoints per router.

    Parameters
    ----------
    name:
        Human readable identifier, e.g. ``"SF(q=29)"``.
    num_routers:
        Number of routers ``Nr``; routers are labelled ``0 .. Nr-1``.
    edges:
        Iterable of undirected router-router links ``(u, v)`` with ``u != v``.
        Parallel edges and self loops are rejected.
    concentration:
        Endpoints attached to each router (``p``).  For heterogeneous topologies
        (fat trees, where only edge routers host endpoints) pass
        ``endpoint_routers`` to restrict which routers have endpoints.
    endpoint_routers:
        Optional list of router ids that host endpoints.  Defaults to all routers.
    diameter_hint:
        Known diameter of the topology (used for reporting; the true diameter can
        always be recomputed via :meth:`diameter`).
    meta:
        Free-form construction parameters (``q`` for Slim Fly, ``a/h`` for
        Dragonfly, ...), kept for reporting and cost modelling.
    """

    name: str
    num_routers: int
    edges: Sequence[Edge]
    concentration: int
    endpoint_routers: Optional[Sequence[int]] = None
    diameter_hint: Optional[int] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_routers <= 0:
            raise ValueError("num_routers must be positive")
        if self.concentration < 0:
            raise ValueError("concentration must be non-negative")
        seen = set()
        normalized: List[Edge] = []
        for u, v in self.edges:
            if not (0 <= u < self.num_routers and 0 <= v < self.num_routers):
                raise ValueError(f"edge ({u},{v}) references unknown router")
            if u == v:
                raise ValueError(f"self loop on router {u}")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise ValueError(f"duplicate edge {key}")
            seen.add(key)
            normalized.append(key)
        self.edges = tuple(sorted(normalized))
        if self.endpoint_routers is None:
            self.endpoint_routers = tuple(range(self.num_routers))
        else:
            eps = tuple(sorted(set(self.endpoint_routers)))
            for r in eps:
                if not 0 <= r < self.num_routers:
                    raise ValueError(f"endpoint router {r} out of range")
            self.endpoint_routers = eps
        self._adjacency: Optional[List[List[int]]] = None
        self._degree: Optional[np.ndarray] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------ basic
    @property
    def num_edges(self) -> int:
        """Number of undirected router-router links."""
        return len(self.edges)

    @property
    def num_endpoints(self) -> int:
        """Total number of endpoints ``N = p * |endpoint routers|``."""
        return self.concentration * len(self.endpoint_routers)

    @property
    def network_radix(self) -> int:
        """Maximum router-to-router degree ``k'`` over all routers."""
        return int(self.degrees().max()) if self.num_edges else 0

    @property
    def router_radix(self) -> int:
        """Full router radix ``k = k' + p`` (ports for links plus endpoints)."""
        return self.network_radix + self.concentration

    def adjacency(self) -> List[List[int]]:
        """Adjacency lists (neighbour ids, sorted) — cached."""
        if self._adjacency is None:
            adj: List[List[int]] = [[] for _ in range(self.num_routers)]
            for u, v in self.edges:
                adj[u].append(v)
                adj[v].append(u)
            for lst in adj:
                lst.sort()
            self._adjacency = adj
        return self._adjacency

    def degrees(self) -> np.ndarray:
        """Router-to-router degree of every router."""
        if self._degree is None:
            deg = np.zeros(self.num_routers, dtype=np.int64)
            for u, v in self.edges:
                deg[u] += 1
                deg[v] += 1
            self._degree = deg
        return self._degree

    def directed_edges(self) -> List[Edge]:
        """Both orientations of every link (used by routing tables and LPs)."""
        out: List[Edge] = []
        for u, v in self.edges:
            out.append((u, v))
            out.append((v, u))
        return out

    # ------------------------------------------------------------- endpoints
    def router_of_endpoint(self, endpoint: int) -> int:
        """Router hosting ``endpoint`` (endpoints are packed p-per-router)."""
        if not 0 <= endpoint < self.num_endpoints:
            raise ValueError(f"endpoint {endpoint} out of range")
        return self.endpoint_routers[endpoint // self.concentration]

    def endpoints_of_router(self, router: int) -> List[int]:
        """Endpoints attached to ``router`` (empty for non-edge routers)."""
        try:
            idx = self.endpoint_routers.index(router)
        except ValueError:
            return []
        base = idx * self.concentration
        return list(range(base, base + self.concentration))

    def endpoint_router_array(self) -> np.ndarray:
        """``array[e] = router hosting endpoint e`` for all endpoints."""
        reps = np.repeat(np.asarray(self.endpoint_routers, dtype=np.int64), self.concentration)
        return reps

    # ---------------------------------------------------------------- graphs
    def to_networkx(self) -> nx.Graph:
        """Router graph as a NetworkX graph (for validation / reference algos)."""
        g = nx.Graph()
        g.add_nodes_from(range(self.num_routers))
        g.add_edges_from(self.edges)
        return g

    def subgraph(self, edge_subset: Iterable[Edge]) -> "Topology":
        """A topology restricted to ``edge_subset`` (same routers/endpoints).

        Used by layered routing, where a *layer* is a subset of links.
        """
        return Topology(
            name=f"{self.name}|subset",
            num_routers=self.num_routers,
            edges=tuple(edge_subset),
            concentration=self.concentration,
            endpoint_routers=self.endpoint_routers,
            diameter_hint=None,
            meta=dict(self.meta),
        )

    # --------------------------------------------------------------- kernels
    def fingerprint(self) -> str:
        """Stable digest of ``(num_routers, edges)`` — the shared-cache key."""
        if self._fingerprint is None:
            from repro.kernels.cache import fingerprint_edges
            self._fingerprint = fingerprint_edges(self.num_routers, self.edges)
        return self._fingerprint

    def kernels(self):
        """This topology's :class:`~repro.kernels.cache.GraphKernels` (shared cache)."""
        from repro.kernels.cache import kernels_for
        return kernels_for(self)

    # --------------------------------------------------------------- metrics
    def is_connected(self) -> bool:
        """True if the router graph is connected (handles empty edge lists)."""
        return self.kernels().is_connected()

    def bfs_distances(self, source: int) -> np.ndarray:
        """Hop distances from ``source`` to all routers (-1 if unreachable).

        Served from the shared path cache (the first query per source runs the
        vectorized CSR BFS); a fresh writable array is returned each call, matching
        the legacy per-call BFS contract.  Isolated sources and empty edge lists are
        handled gracefully (all entries -1 except the source itself).
        """
        if not 0 <= source < self.num_routers:
            raise ValueError(f"source router {source} out of range")
        return self.kernels().distances_from(int(source)).copy()

    def diameter(self, sample: Optional[int] = None, rng: Optional[np.random.Generator] = None) -> int:
        """Diameter of the router graph.

        With ``sample`` set, only that many BFS sources are used (a lower bound,
        adequate for vertex-transitive topologies and for sanity checks on large
        instances).
        """
        kernels = self.kernels()
        if sample is not None and sample < self.num_routers:
            rng = rng or np.random.default_rng(0)
            sources = rng.choice(self.num_routers, size=sample, replace=False)
            rows = kernels.csr.bfs_distances_batch([int(s) for s in sources])
        else:
            rows = kernels.distance_matrix()
        if rows.size and (rows < 0).any():
            raise ValueError("graph is disconnected; diameter undefined")
        return int(rows.max()) if rows.size else 0

    def average_path_length(self, sample: Optional[int] = None,
                            rng: Optional[np.random.Generator] = None) -> float:
        """Average shortest-path length ``d`` over (sampled) router pairs."""
        kernels = self.kernels()
        if sample is not None and sample < self.num_routers:
            rng = rng or np.random.default_rng(0)
            sources = rng.choice(self.num_routers, size=sample, replace=False)
            rows = kernels.csr.bfs_distances_batch([int(s) for s in sources])
        else:
            rows = kernels.distance_matrix()
        mask = rows > 0
        pairs = int(mask.sum())
        if pairs == 0:
            return 0.0
        return float(rows[mask].sum()) / pairs

    def edge_density(self) -> float:
        """(links incl. endpoint links) / endpoints — the paper's Fig 19 metric."""
        if self.num_endpoints == 0:
            return float("inf")
        return (self.num_edges + self.num_endpoints) / self.num_endpoints

    # ----------------------------------------------------------------- dunder
    def __iter__(self) -> Iterator[Edge]:
        return iter(self.edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology({self.name!r}, Nr={self.num_routers}, N={self.num_endpoints}, "
            f"k'={self.network_radix}, p={self.concentration})"
        )
