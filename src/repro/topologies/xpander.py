"""Xpander topology — Valadarsky, Dinitz, Schapira (HotNets'15).

Xpander is built by applying an ``ell``-lift to a ``k'``-regular base graph (here the
complete graph on ``k'+1`` vertices): the lift makes ``ell`` copies of every vertex and
replaces each base edge by a random perfect matching between the corresponding copy
sets.  The result is a ``k'``-regular graph on ``ell * (k'+1)`` routers with good
expansion, deterministic up to the choice of matchings (paper Appendix A.D).

The paper uses a single lift with ``ell = k'`` and concentration ``p = ceil(k'/2)``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.topologies.base import Topology
from repro.topologies.complete import complete_graph


def xpander(network_radix: int, lift: Optional[int] = None,
            concentration: Optional[int] = None, seed: Optional[int] = None) -> Topology:
    """Xpander via a single random ``lift``-lift of the complete graph K_{k'+1}.

    Parameters
    ----------
    network_radix:
        Router-to-router degree ``k'`` (the base graph is K_{k'+1}).
    lift:
        Number of copies ``ell``; defaults to ``k'`` (the paper's configuration).
    concentration:
        Endpoints per router; defaults to ``ceil(k'/2)``.
    seed:
        Seed for the random matchings.
    """
    if network_radix < 2:
        raise ValueError("network_radix must be >= 2")
    if lift is None:
        lift = network_radix
    if lift < 1:
        raise ValueError("lift must be >= 1")
    if concentration is None:
        concentration = math.ceil(network_radix / 2)

    base = complete_graph(network_radix + 1)
    rng = np.random.default_rng(seed)
    num_routers = lift * base.num_routers

    def rid(base_vertex: int, copy: int) -> int:
        return base_vertex * lift + copy

    edges: List[Tuple[int, int]] = []
    for u, v in base.edges:
        perm = rng.permutation(lift)
        for copy in range(lift):
            edges.append((rid(u, copy), rid(v, int(perm[copy]))))

    topo = Topology(
        name=f"XP(k'={network_radix},l={lift})",
        num_routers=num_routers,
        edges=edges,
        concentration=concentration,
        diameter_hint=3,
        meta={"family": "xpander", "network_radix": network_radix, "lift": lift, "seed": seed},
    )
    if not topo.is_connected():
        return xpander(network_radix, lift, concentration, seed=(seed or 0) + 10_007)
    return topo
