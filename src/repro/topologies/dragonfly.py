"""Dragonfly topology — Kim, Dally, Scott, Abts (ISCA'08); "balanced" maximum-capacity variant.

Routers are arranged in ``g`` groups of ``a`` routers.  Each group is a complete graph
(local links); each router additionally has ``h`` global channels, and the groups form a
complete graph of groups with exactly one global link between any two groups.

The *balanced* maximum-capacity Dragonfly used in the paper (Table V) fixes
``a = 2p = 2h`` and ``g = a*h + 1``, so a single parameter ``p`` determines everything:

* routers per group  ``a = 2p``
* global channels    ``h = p``
* groups             ``g = 2p**2 + 1``
* routers            ``Nr = a*g = 4p**3 + 2p``
* network radix      ``k' = (a - 1) + h = 3p - 1``
* diameter           ``D = 3`` (local, global, local)
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.topologies.base import Topology


def dragonfly(p: int, concentration: Optional[int] = None) -> Topology:
    """Balanced Dragonfly parameterised by the concentration ``p`` (see module docs)."""
    if p < 1:
        raise ValueError("p must be >= 1")
    a = 2 * p
    h = p
    g = a * h + 1
    num_routers = a * g
    if concentration is None:
        concentration = p

    def rid(group: int, index: int) -> int:
        return group * a + index

    edges: List[Tuple[int, int]] = []
    # Local links: each group is a complete graph over its `a` routers.
    for grp in range(g):
        for i in range(a):
            for j in range(i + 1, a):
                edges.append((rid(grp, i), rid(grp, j)))

    # Global links: the "palmtree"/consecutive assignment.  Group `grp` owns a*h global
    # ports, numbered 0 .. a*h-1 (port t belongs to router t // h within the group).
    # Global port t of group grp connects towards group (grp + t + 1) mod g; the peer
    # port on that group is the one pointing back, i.e. port (g - 2 - t) of that group.
    # Each unordered group pair then gets exactly one link.
    for grp in range(g):
        for t in range(a * h):
            other = (grp + t + 1) % g
            if grp < other:
                peer_port = g - 2 - t
                u = rid(grp, t // h)
                v = rid(other, peer_port // h)
                edges.append((u, v))

    topo = Topology(
        name=f"DF(p={p})",
        num_routers=num_routers,
        edges=edges,
        concentration=concentration,
        diameter_hint=3,
        meta={
            "family": "dragonfly",
            "p": p,
            "a": a,
            "h": h,
            "groups": g,
            "network_radix": 3 * p - 1,
        },
    )
    return topo


def dragonfly_group_of(topology: Topology, router: int) -> int:
    """Group index of a router in a Dragonfly built by :func:`dragonfly`."""
    if topology.meta.get("family") != "dragonfly":
        raise ValueError("topology is not a dragonfly")
    return router // int(topology.meta["a"])
