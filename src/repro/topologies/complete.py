"""Complete graph (clique) topology — the diameter-1 corner case.

The paper uses cliques as a lower bound on path length, to model the global channels
of a Dragonfly (which form a complete graph over groups) and to validate metrics.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.topologies.base import Topology


def complete_graph(num_routers: int, concentration: Optional[int] = None) -> Topology:
    """Fully connected graph over ``num_routers`` routers.

    ``k' = num_routers - 1``; the paper's suggested concentration for cliques is
    ``p = k'`` (Appendix A.G), which is the default here.
    """
    if num_routers < 2:
        raise ValueError("complete graph needs at least 2 routers")
    k_prime = num_routers - 1
    if concentration is None:
        concentration = k_prime
    edges: List[Tuple[int, int]] = [
        (u, v) for u in range(num_routers) for v in range(u + 1, num_routers)
    ]
    return Topology(
        name=f"Clique(Nr={num_routers})",
        num_routers=num_routers,
        edges=edges,
        concentration=concentration,
        diameter_hint=1,
        meta={"family": "complete", "network_radix": k_prime},
    )
