"""Slim Fly (MMS) topology — Besta & Hoefler, SC'14; diameter-2 variant used by FatPaths.

The MMS construction builds a diameter-2 graph over two groups of ``q**2`` routers each,
labelled ``(0, x, y)`` and ``(1, m, c)`` with ``x, y, m, c`` in GF(q), where ``q`` is a
prime power of the form ``q = 4w + delta`` with ``delta in {-1, 0, 1}``:

* ``(0, x, y) ~ (0, x, y')``  iff ``y - y'``  is in the generator set ``X``
* ``(1, m, c) ~ (1, m, c')``  iff ``c - c'``  is in the generator set ``X'``
* ``(0, x, y) ~ (1, m, c)``   iff ``y = m*x + c``

giving ``Nr = 2 q**2`` routers of network radix ``k' = (3q - delta) / 2``.  The suggested
concentration is ``p = ceil(k'/2)`` (paper Appendix A / Table V).
"""

from __future__ import annotations

import math
from typing import List, Optional, Set, Tuple

from repro.topologies.base import Topology
from repro.topologies.galois import GaloisField, is_prime_power


def mms_delta(q: int) -> int:
    """The delta in ``q = 4w + delta`` or raise if q is not of MMS form."""
    for delta in (-1, 0, 1):
        if (q - delta) % 4 == 0 and (q - delta) // 4 > 0:
            return delta
    raise ValueError(f"q={q} is not of the form 4w-1, 4w, or 4w+1 with w >= 1")


def _generator_sets(field: GaloisField) -> Tuple[Set[int], Set[int]]:
    """Build the MMS generator sets X and X' for GF(q).

    Uses the closed-form power sets from the Slim Fly paper; both sets are validated
    to be symmetric (closed under negation), which is what makes the intra-group
    Cayley graphs undirected.
    """
    q = field.q
    delta = mms_delta(q)
    xi = field.primitive_element()
    powers = [1]
    for _ in range(q - 2):
        powers.append(field.mul(powers[-1], xi))
    # powers[i] == xi**i for i in 0 .. q-2

    if delta == 1:
        x_exp = list(range(0, q - 2, 2))        # even powers (quadratic residues)
    else:  # delta in {-1, 0}, q = 4w - 1 or q = 4w
        w = (q - delta) // 4
        x_exp = list(range(0, 2 * w - 1, 2)) + list(range(2 * w - 1, 4 * w - 2, 2))

    gen_x = {powers[e % (q - 1)] for e in x_exp}
    # X' is xi * X in all three cases (for delta=1 this is exactly the odd powers).
    gen_xp = {field.mul(xi, v) for v in gen_x}

    # In characteristic 2, negation is the identity so symmetry is automatic; otherwise
    # enforce/verify symmetry, which the power formulas above guarantee for valid q.
    for label, s in (("X", gen_x), ("X'", gen_xp)):
        sym = {field.neg(v) for v in s}
        if sym != s:
            raise ValueError(
                f"MMS generator set {label} for q={q} is not symmetric; "
                "this q is not supported by the closed-form construction"
            )
    expected = (q - delta) // 2
    if len(gen_x) != expected or len(gen_xp) != expected:
        raise ValueError(
            f"MMS generator sets for q={q} have sizes {len(gen_x)}/{len(gen_xp)}, "
            f"expected {expected}"
        )
    return gen_x, gen_xp


def slim_fly(q: int, concentration: Optional[int] = None, validate: bool = True) -> Topology:
    """Build a Slim Fly (MMS) topology for prime power ``q``.

    Parameters
    ----------
    q:
        Prime power of the form ``4w + delta`` with ``delta in {-1, 0, 1}``.
    concentration:
        Endpoints per router; defaults to the paper's ``ceil(k'/2)``.
    validate:
        If True (default) check regularity and, for small instances, diameter 2.
    """
    if not is_prime_power(q):
        raise ValueError(f"q={q} must be a prime power")
    delta = mms_delta(q)
    field = GaloisField(q)
    field.build_mul_table()
    gen_x, gen_xp = _generator_sets(field)

    def rid(group: int, a: int, b: int) -> int:
        return group * q * q + a * q + b

    edges: List[Tuple[int, int]] = []
    # Intra-group Cayley edges within group 0: (0, x, y) ~ (0, x, y') iff y - y' in X.
    for x in range(q):
        for y in range(q):
            for yp in range(y + 1, q):
                if field.sub(y, yp) in gen_x:
                    edges.append((rid(0, x, y), rid(0, x, yp)))
    # Intra-group Cayley edges within group 1: (1, m, c) ~ (1, m, c') iff c - c' in X'.
    for m in range(q):
        for c in range(q):
            for cp in range(c + 1, q):
                if field.sub(c, cp) in gen_xp:
                    edges.append((rid(1, m, c), rid(1, m, cp)))
    # Inter-group edges: (0, x, y) ~ (1, m, c) iff y = m*x + c.
    for x in range(q):
        for m in range(q):
            mx = field.mul(m, x)
            for c in range(q):
                y = field.add(mx, c)
                edges.append((rid(0, x, y), rid(1, m, c)))

    network_radix = (3 * q - delta) // 2
    if concentration is None:
        concentration = math.ceil(network_radix / 2)

    topo = Topology(
        name=f"SF(q={q})",
        num_routers=2 * q * q,
        edges=edges,
        concentration=concentration,
        diameter_hint=2,
        meta={"family": "slimfly", "q": q, "delta": delta, "network_radix": network_radix},
    )

    if validate:
        degrees = topo.degrees()
        if degrees.min() != network_radix or degrees.max() != network_radix:
            raise ValueError(
                f"Slim Fly q={q}: expected {network_radix}-regular graph, got degrees "
                f"[{degrees.min()}, {degrees.max()}]"
            )
        if topo.num_routers <= 800:
            diam = topo.diameter()
            if diam != 2:
                raise ValueError(f"Slim Fly q={q}: expected diameter 2, got {diam}")
    return topo
