"""Algebraic (Cheung-style) connectivity estimators (paper Appendix B.C).

These estimate the number of disjoint paths between router pairs with linear algebra
instead of combinatorial search: random coefficients are injected at the source's
outgoing edges (or neighbours), propagated ``l`` times through a random *connection
matrix*, and the number of linearly independent components arriving at the target —
the rank of a small submatrix — equals the number of disjoint paths (with probability 1
over the random coefficients, up to floating-point rank tolerance).

Two variants are provided:

* :func:`algebraic_edge_connectivity` — edge-disjoint paths of length <= ``max_len``
  (propagation over the directed line graph, matching the appendix's K').
* :func:`algebraic_vertex_connectivity` — internally vertex-disjoint paths of length
  <= ``max_len`` between non-adjacent routers (propagation over vertices).

Unlike the greedy estimator in :mod:`repro.diversity.disjoint_paths` (a lower bound),
the algebraic estimator upper-bounds the greedy count: it counts disjoint path *systems*
of bounded length without requiring that each individual augmenting path is shortest.
With ``max_len >= Nr`` both variants converge to the classical edge/vertex connectivity.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.kernels.cache import kernels_for
from repro.topologies.base import Topology


def _rank(matrix: np.ndarray, tol: float = 1e-8) -> int:
    if matrix.size == 0:
        return 0
    singular = np.linalg.svd(matrix, compute_uv=False)
    if singular.size == 0:
        return 0
    return int(np.sum(singular > tol * max(singular[0], 1.0)))


def algebraic_edge_connectivity(topology: Topology, source: int, target: int,
                                max_len: int, rng: np.random.Generator | None = None) -> int:
    """Estimate the number of edge-disjoint paths of length <= ``max_len`` from s to t."""
    if source == target:
        raise ValueError("source and target must differ")
    if max_len < 1:
        raise ValueError("max_len must be >= 1")
    rng = rng or np.random.default_rng(0)

    # Pairs farther apart than max_len admit no bounded path system at all; the
    # propagated state would be all-zero in the target's columns, so rank 0 is exact.
    hop = int(kernels_for(topology).distances_from(source)[target])
    if hop < 0 or hop > max_len:
        return 0

    directed = topology.directed_edges()
    edge_index: Dict[Tuple[int, int], int] = {e: i for i, e in enumerate(directed)}
    num_edges = len(directed)
    out_edges: List[List[int]] = [[] for _ in range(topology.num_routers)]
    in_edges: List[List[int]] = [[] for _ in range(topology.num_routers)]
    for (u, v), idx in edge_index.items():
        out_edges[u].append(idx)
        in_edges[v].append(idx)

    # Connection matrix over directed edges: K[(i,k),(k,j)] = random weight, but never
    # doubling straight back over the same physical link (a path never uses both
    # orientations of one link).
    connection = np.zeros((num_edges, num_edges))
    for (u, v), idx in edge_index.items():
        for nxt in out_edges[v]:
            v2, w = directed[nxt]
            if w == u:
                continue
            connection[idx, nxt] = rng.uniform(0.5, 1.5)

    src_out = out_edges[source]
    if not src_out:
        return 0
    inject = np.zeros((len(src_out), num_edges))
    for row, edge in enumerate(src_out):
        inject[row, edge] = rng.uniform(0.5, 1.5)

    state = inject.copy()
    for _ in range(max_len - 1):
        state = state @ connection + inject
        norm = np.abs(state).max()
        if norm > 0:
            state /= norm
    columns = in_edges[target]
    if not columns:
        return 0
    return _rank(state[:, columns])


def algebraic_vertex_connectivity(topology: Topology, source: int, target: int,
                                  max_len: int, rng: np.random.Generator | None = None) -> int:
    """Estimate internally vertex-disjoint paths (length <= ``max_len``) between
    non-adjacent routers ``source`` and ``target``.

    Raises ValueError for adjacent routers, where vertex connectivity is undefined
    (as discussed in the paper's appendix).
    """
    if source == target:
        raise ValueError("source and target must differ")
    if max_len < 1:
        raise ValueError("max_len must be >= 1")
    adj = topology.adjacency()
    if target in adj[source]:
        raise ValueError("vertex connectivity is undefined for adjacent routers")
    rng = rng or np.random.default_rng(0)
    n = topology.num_routers

    # Any internally-disjoint path is at least as long as the unconstrained shortest
    # path, so distance > max_len (or disconnection) forces a zero count.
    hop = int(kernels_for(topology).distances_from(source)[target])
    if hop < 0 or hop > max_len:
        return 0

    connection = np.zeros((n, n))
    for u, v in topology.edges:
        connection[u, v] = rng.uniform(0.5, 1.5)
        connection[v, u] = rng.uniform(0.5, 1.5)
    # Paths must not pass through the source or target as intermediate vertices.
    connection[:, source] = 0.0
    connection[target, :] = 0.0

    neighbours = adj[source]
    inject = np.zeros((len(neighbours), n))
    for row, v in enumerate(neighbours):
        inject[row, v] = rng.uniform(0.5, 1.5)

    state = inject.copy()
    for _ in range(max_len - 1):
        state = state @ connection + inject
        norm = np.abs(state).max()
        if norm > 0:
            state /= norm
    columns = adj[target]
    if not columns:
        return 0
    return _rank(state[:, columns])
