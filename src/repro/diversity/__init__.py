"""Path-diversity analysis of low-diameter topologies (paper §IV and Appendix B).

The FatPaths design rests on a quantitative analysis of *path diversity*:

* :mod:`repro.diversity.minimal_paths` — lengths ``l_min`` and counts ``c_min`` of
  shortest paths between router pairs (Figure 6).
* :mod:`repro.diversity.disjoint_paths` — length-limited counts of edge-disjoint paths
  ``c_l(A, B)`` (the CDP measure, Figure 7 / Table IV).
* :mod:`repro.diversity.interference` — the Path Interference metric ``I_ac,bd``
  (Figure 8 / Table IV).
* :mod:`repro.diversity.metrics` — Total Network Load, CDP/PI summary statistics and
  edge density.
* :mod:`repro.diversity.collisions` — the flow-collision analysis that motivates
  "three disjoint paths per router pair" (Figure 4).
* :mod:`repro.diversity.matrixcount` — adjacency-matrix path counting and next-hop set
  computation (Appendix B.A).
* :mod:`repro.diversity.connectivity` — the algebraic (Cheung-style) length-limited
  connectivity algorithm (Appendix B.C).
"""

from repro.diversity.collisions import collision_histogram, collisions_per_router_pair
from repro.diversity.connectivity import (
    algebraic_edge_connectivity,
    algebraic_vertex_connectivity,
)
from repro.diversity.disjoint_paths import (
    count_disjoint_paths,
    count_disjoint_paths_sets,
    disjoint_path_distribution,
)
from repro.diversity.interference import (
    interference_distribution,
    path_interference,
)
from repro.diversity.matrixcount import count_paths_matrix, next_hop_sets
from repro.diversity.metrics import (
    DiversitySummary,
    cdp_summary,
    pi_summary,
    total_network_load,
)
from repro.diversity.minimal_paths import (
    minimal_path_lengths,
    minimal_path_counts,
    minimal_path_statistics,
)

__all__ = [
    "collision_histogram",
    "collisions_per_router_pair",
    "algebraic_edge_connectivity",
    "algebraic_vertex_connectivity",
    "count_disjoint_paths",
    "count_disjoint_paths_sets",
    "disjoint_path_distribution",
    "interference_distribution",
    "path_interference",
    "count_paths_matrix",
    "next_hop_sets",
    "DiversitySummary",
    "cdp_summary",
    "pi_summary",
    "total_network_load",
    "minimal_path_lengths",
    "minimal_path_counts",
    "minimal_path_statistics",
]
