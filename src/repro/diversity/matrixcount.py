"""Adjacency-matrix path counting and next-hop tables (paper Appendix B.A).

Two classical matrix-multiplication constructions, reproduced for completeness and used
to cross-validate the BFS-based code:

* ``A**l`` counts walks of exactly ``l`` steps between every vertex pair (Theorem 1).
* A "set semiring" product propagates *next-hop sets*: after ``l`` iterations, entry
  ``(s, t)`` holds the out-neighbours of ``s`` that start a walk of length <= ``l`` to
  ``t`` — exactly the information a forwarding table needs.
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from repro.topologies.base import Topology


def adjacency_matrix(topology: Topology) -> np.ndarray:
    """Dense symmetric 0/1 adjacency matrix of the router graph."""
    n = topology.num_routers
    mat = np.zeros((n, n), dtype=np.int64)
    for u, v in topology.edges:
        mat[u, v] = 1
        mat[v, u] = 1
    return mat


def count_paths_matrix(topology: Topology, length: int) -> np.ndarray:
    """Number of walks of exactly ``length`` steps between every router pair.

    Note that, as in the paper, walks may revisit vertices; for the shortest-path length
    of a pair this equals the number of shortest paths (cycles cannot shorten a walk).
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    adj = adjacency_matrix(topology)
    result = adj.copy()
    for _ in range(length - 1):
        result = result @ adj
    return result


def count_shortest_paths(topology: Topology) -> np.ndarray:
    """Matrix of counts of *shortest* paths between all router pairs.

    Computed by accumulating ``A**l`` and recording the count the first time a pair
    becomes reachable.  The diagonal is zero.
    """
    n = topology.num_routers
    adj = adjacency_matrix(topology)
    reached = np.eye(n, dtype=bool)
    counts = np.zeros((n, n), dtype=np.int64)
    power = np.eye(n, dtype=np.int64)
    for _ in range(n):
        power = power @ adj
        newly = (~reached) & (power > 0)
        counts[newly] = power[newly]
        reached |= newly
        if reached.all():
            break
    return counts


def next_hop_sets(topology: Topology, max_len: int) -> List[List[Set[int]]]:
    """Next-hop sets for every (source, destination) pair considering paths <= ``max_len``.

    ``result[s][t]`` is the set of neighbours ``v`` of ``s`` such that some walk
    ``s -> v -> ... -> t`` of total length at most ``max_len`` exists.  This is the
    "matrix multiplication for routing tables" scheme of Appendix B.A.1: sets are
    propagated with union as addition and "keep the set if an edge continues the walk"
    as multiplication, always multiplying by the original adjacency matrix on the right.
    """
    if max_len < 1:
        raise ValueError("max_len must be >= 1")
    n = topology.num_routers
    adj_lists = topology.adjacency()
    # current[s][t] = set of first hops of walks s->t with length <= iteration count
    current: List[List[Set[int]]] = [[set() for _ in range(n)] for _ in range(n)]
    for s in range(n):
        for v in adj_lists[s]:
            current[s][v].add(v)
    accumulated: List[List[Set[int]]] = [[set(current[s][t]) for t in range(n)] for s in range(n)]
    for _ in range(max_len - 1):
        nxt: List[List[Set[int]]] = [[set() for _ in range(n)] for _ in range(n)]
        for s in range(n):
            row = current[s]
            for mid in range(n):
                hops = row[mid]
                if not hops:
                    continue
                for t in adj_lists[mid]:
                    nxt[s][t] |= hops
        current = nxt
        for s in range(n):
            for t in range(n):
                accumulated[s][t] |= current[s][t]
    for s in range(n):
        accumulated[s][s] = set()
    return accumulated
