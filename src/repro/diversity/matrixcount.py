"""Adjacency-matrix path counting and next-hop tables (paper Appendix B.A).

Two classical matrix-multiplication constructions, reproduced for completeness and used
to cross-validate the BFS-based code:

* ``A**l`` counts walks of exactly ``l`` steps between every vertex pair (Theorem 1).
* A "set semiring" product propagates *next-hop sets*: after ``l`` iterations, entry
  ``(s, t)`` holds the out-neighbours of ``s`` that start a walk of length <= ``l`` to
  ``t`` — exactly the information a forwarding table needs.

Both are served by the vectorized kernels in :mod:`repro.kernels.paths`: walk counts
run as sparse-by-dense matrix powers, shortest-path counts as one masked accumulation
sweep per distance level against the cached distance matrix, and the next-hop sets are
read directly off that matrix (a neighbour starts a qualifying walk iff its cached
distance to the target fits the remaining budget).  The legacy scalar constructions
live on in :mod:`repro.kernels.reference` and the equivalence tests pin these kernels
to them.
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from repro.kernels.cache import kernels_for
from repro.kernels.paths import next_hop_sets_from_distances, walk_count_matrix
from repro.topologies.base import Topology


def adjacency_matrix(topology: Topology) -> np.ndarray:
    """Dense symmetric 0/1 adjacency matrix of the router graph."""
    adj = kernels_for(topology).csr.scipy_adjacency(dtype=np.int64)
    return np.asarray(adj.todense(), dtype=np.int64)


def count_paths_matrix(topology: Topology, length: int) -> np.ndarray:
    """Number of walks of exactly ``length`` steps between every router pair.

    Note that, as in the paper, walks may revisit vertices; for the shortest-path length
    of a pair this equals the number of shortest paths (cycles cannot shorten a walk).
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    return walk_count_matrix(kernels_for(topology).csr, length)


def count_shortest_paths(topology: Topology) -> np.ndarray:
    """Matrix of counts of *shortest* paths between all router pairs.

    Served from the shared path cache: the cached all-pairs distance matrix masks one
    matrix-power accumulation per distance level.  The diagonal is zero.
    """
    return kernels_for(topology).shortest_path_counts().copy()


def next_hop_sets(topology: Topology, max_len: int) -> List[List[Set[int]]]:
    """Next-hop sets for every (source, destination) pair considering paths <= ``max_len``.

    ``result[s][t]`` is the set of neighbours ``v`` of ``s`` such that some walk
    ``s -> v -> ... -> t`` of total length at most ``max_len`` exists.  Computed from
    the cached distance matrix (see :func:`repro.kernels.paths.next_hop_sets_from_distances`);
    result identical to the appendix's set-semiring propagation.
    """
    kernels = kernels_for(topology)
    return next_hop_sets_from_distances(kernels.csr, kernels.distance_matrix(), max_len)
