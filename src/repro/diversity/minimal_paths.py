"""Minimal-path statistics: lengths ``l_min`` and diversities ``c_min`` (paper §IV-B1, Fig 6).

``l_min(s, t)`` is the shortest-path length between routers; ``c_min(s, t)`` is the
number of edge-disjoint shortest paths, i.e. ``c_l({s},{t})`` evaluated at
``l = l_min(s, t)``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.cache import kernels_for
from repro.kernels.disjoint import batch_disjoint_paths
from repro.topologies.base import Topology


def minimal_path_lengths(topology: Topology, sources: Optional[Sequence[int]] = None) -> np.ndarray:
    """Matrix of shortest-path lengths ``l_min`` from ``sources`` (default: all routers).

    Returns an array of shape ``(len(sources), Nr)``; unreachable pairs get -1.
    Served by the vectorized CSR kernels — the full-source case reuses the cached
    all-pairs distance matrix.
    """
    kernels = kernels_for(topology)
    if sources is None:
        return kernels.distance_matrix().copy()
    return kernels.csr.bfs_distances_batch([int(s) for s in sources])


def minimal_path_counts(topology: Topology, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
    """``c_min(s, t)`` for the given router pairs: edge-disjoint shortest-path counts.

    Pairs sharing an ``l_min`` run through one call of the batched greedy kernel
    (``c_l`` at ``l = l_min``); unreachable pairs count zero.
    """
    kernels = kernels_for(topology)
    pair_arr = np.asarray(list(pairs), dtype=np.int64).reshape(-1, 2)
    out = np.zeros(pair_arr.shape[0], dtype=np.int64)
    if pair_arr.size == 0:
        return out
    if (pair_arr[:, 0] == pair_arr[:, 1]).any():
        raise ValueError("pairs must consist of distinct routers")
    source_rows, target_rows = kernels.pair_distance_rows(pair_arr)
    lmins = source_rows[np.arange(pair_arr.shape[0]), pair_arr[:, 1]]
    for lmin in np.unique(lmins):
        if lmin < 0:
            continue  # unreachable pairs keep count 0
        idx = np.flatnonzero(lmins == lmin)
        out[idx] = batch_disjoint_paths(
            kernels.csr, pair_arr[idx], int(lmin),
            bounds=target_rows[idx], source_bounds=source_rows[idx])
    return out


@dataclass
class MinimalPathStatistics:
    """Distributions of shortest-path lengths and diversities over sampled router pairs."""

    length_histogram: Dict[int, float]
    count_histogram: Dict[int, float]
    mean_length: float
    mean_count: float
    fraction_single_shortest_path: float
    num_pairs: int

    def as_rows(self) -> List[Dict[str, object]]:
        """Rows suitable for tabular printing in experiments."""
        rows: List[Dict[str, object]] = []
        for length, frac in sorted(self.length_histogram.items()):
            rows.append({"metric": "l_min", "value": length, "fraction": frac})
        for count, frac in sorted(self.count_histogram.items()):
            rows.append({"metric": "c_min", "value": count, "fraction": frac})
        return rows


def minimal_path_statistics(topology: Topology, num_samples: int = 500,
                            rng: Optional[np.random.Generator] = None,
                            count_cap: int = 4) -> MinimalPathStatistics:
    """Sampled distributions of ``l_min`` and ``c_min`` (paper Figure 6).

    ``count_cap`` groups all diversities ``>= count_cap`` into one bucket, matching the
    paper's ">3" category.  Pairs are sampled from the endpoint-hosting routers (all
    routers except for fat trees, where only edge switches exchange traffic).
    """
    rng = rng or np.random.default_rng(0)
    candidates = list(topology.endpoint_routers)
    nc = len(candidates)
    if nc < 2:
        raise ValueError("need at least two endpoint-hosting routers")
    pairs: List[Tuple[int, int]] = []
    max_pairs = nc * (nc - 1) // 2
    if num_samples >= max_pairs:
        pairs = [(candidates[i], candidates[j]) for i in range(nc) for j in range(i + 1, nc)]
    else:
        seen = set()
        while len(pairs) < num_samples:
            i, j = (int(x) for x in rng.integers(0, nc, size=2))
            if i == j:
                continue
            s, t = candidates[min(i, j)], candidates[max(i, j)]
            if (s, t) in seen:
                continue
            seen.add((s, t))
            pairs.append((s, t))

    kernels = kernels_for(topology)
    lengths: List[int] = [int(kernels.distances_from(s)[t]) for s, t in pairs]
    counts = minimal_path_counts(topology, pairs)

    length_counter = Counter(lengths)
    capped = [min(int(c), count_cap) for c in counts]
    count_counter = Counter(capped)
    n = len(pairs)
    return MinimalPathStatistics(
        length_histogram={k: v / n for k, v in sorted(length_counter.items())},
        count_histogram={k: v / n for k, v in sorted(count_counter.items())},
        mean_length=float(np.mean(lengths)),
        mean_count=float(np.mean(counts)),
        fraction_single_shortest_path=float(np.mean(counts == 1)),
        num_pairs=n,
    )
