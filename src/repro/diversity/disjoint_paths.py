"""Length-limited counts of edge-disjoint paths (the paper's CDP measure, §IV-B1).

``c_l(A, B)`` is defined as the smallest number of edges whose removal disconnects every
path of length at most ``l`` from the router set ``A`` to the router set ``B``.  Exact
computation of maximum length-bounded disjoint path sets is NP-hard for ``l >= 4``, so —
exactly like the paper — we use a Ford–Fulkerson-flavoured greedy heuristic: repeatedly
find a path of length at most ``l`` (shortest first, via BFS), remove its edges, and
count how many paths were removed before ``h_l(A) ∩ B`` becomes empty.  The result is a
lower bound that is tight for the regimes of interest (it equals the true value whenever
shortest augmenting paths do not interfere, which holds for small ``l``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kernels.cache import kernels_for
from repro.topologies.base import Topology

Edge = Tuple[int, int]


def _bfs_path_within(adj: List[Set[int]], sources: Set[int], targets: Set[int],
                     max_len: int,
                     target_distance: Optional[np.ndarray] = None) -> Optional[List[int]]:
    """Shortest path (as a vertex list) of length <= max_len from ``sources`` to ``targets``.

    Returns None if no such path exists.  Paths of length 0 (a source that is also a
    target) are reported as single-vertex paths.

    ``target_distance`` optionally carries per-vertex lower bounds on the remaining
    distance to ``targets`` (distances in the *unmutated* topology, computed once by
    the CSR kernels).  Vertices with ``depth + bound > max_len`` can never lie on a
    qualifying path — nor can anything discovered through them — so pruning them
    provably returns the same path the unpruned search would.
    """
    for s in sources:
        if s in targets:
            return [s]
    parent: Dict[int, int] = {}
    depth: Dict[int, int] = {}
    frontier = list(sources)
    for s in sources:
        depth[s] = 0
    while frontier:
        next_frontier: List[int] = []
        for u in frontier:
            d = depth[u]
            if d >= max_len:
                continue
            for v in adj[u]:
                if v in depth:
                    continue
                if target_distance is not None:
                    bound = target_distance[v]
                    if bound < 0 or d + 1 + bound > max_len:
                        continue
                depth[v] = d + 1
                parent[v] = u
                if v in targets:
                    # reconstruct
                    path = [v]
                    while path[-1] not in sources:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                next_frontier.append(v)
        frontier = next_frontier
    return None


def count_disjoint_paths_sets(topology: Topology, sources: Iterable[int],
                              targets: Iterable[int], max_len: int,
                              return_paths: bool = False):
    """Greedy count of edge-disjoint paths of length <= ``max_len`` from A to B.

    Mirrors the paper's pruned Ford–Fulkerson variant: repeatedly remove the edges of a
    shortest qualifying path until no path of length at most ``max_len`` remains.

    Parameters
    ----------
    topology:
        Router graph.
    sources, targets:
        Router sets ``A`` and ``B``.  Routers present in both sets yield an (ignored)
        zero-length path and do not contribute to the count.
    max_len:
        Maximum number of hops ``l``.
    return_paths:
        If True return ``(count, paths)`` with the concrete vertex paths found.
    """
    src = set(int(s) for s in sources)
    dst = set(int(t) for t in targets)
    if not src or not dst:
        raise ValueError("source and target sets must be non-empty")
    if max_len < 1:
        raise ValueError("max_len must be >= 1")
    count = 0
    paths: List[List[int]] = []
    overlap = src & dst
    # A router in both sets constitutes an unremovable 0-length connection; the paper's
    # definition only considers designated distinct routers, so we simply skip them.
    effective_src = src - overlap if src - overlap else src
    effective_dst = dst - overlap if dst - overlap else dst
    # Lower bounds on the hop distance to the target set, from the shared CSR cache.
    # Removing edges only increases distances, so these bounds stay admissible across
    # the greedy iterations; pairs farther apart than max_len terminate immediately.
    kernels = kernels_for(topology)
    if len(effective_dst) == 1:
        target_distance = kernels.distances_from(next(iter(effective_dst)))
    else:
        target_distance = kernels.multi_source_distances(sorted(effective_dst))
    if not (effective_src & effective_dst):
        best = min((int(target_distance[s]) for s in effective_src
                    if target_distance[s] >= 0), default=-1)
        if best < 0 or best > max_len:
            return (0, []) if return_paths else 0
    # mutable adjacency (sets for O(1) removal)
    adj: List[Set[int]] = [set(neigh) for neigh in topology.adjacency()]
    while True:
        path = _bfs_path_within(adj, effective_src, effective_dst, max_len,
                                target_distance=target_distance)
        if path is None or len(path) < 2:
            break
        count += 1
        paths.append(path)
        for u, v in zip(path, path[1:]):
            adj[u].discard(v)
            adj[v].discard(u)
    if return_paths:
        return count, paths
    return count


def count_disjoint_paths(topology: Topology, source: int, target: int, max_len: int,
                         return_paths: bool = False):
    """``c_l({s}, {t})`` — disjoint path count between two routers (see module docs)."""
    if source == target:
        raise ValueError("source and target must differ")
    return count_disjoint_paths_sets(topology, [source], [target], max_len,
                                     return_paths=return_paths)


def disjoint_path_distribution(topology: Topology, max_len: int, num_samples: int = 200,
                               rng: Optional[np.random.Generator] = None,
                               pairs: Optional[Sequence[Tuple[int, int]]] = None) -> np.ndarray:
    """Distribution of ``c_l(s, t)`` over sampled router pairs (paper Figure 7).

    Returns an array of counts, one per sampled pair.  Pairs are sampled uniformly at
    random from the endpoint-hosting routers (all routers except for fat trees, where
    only edge switches exchange traffic), unless an explicit ``pairs`` sequence is given.
    """
    rng = rng or np.random.default_rng(0)
    candidates = list(topology.endpoint_routers)
    if len(candidates) < 2:
        raise ValueError("need at least two endpoint-hosting routers")
    results = []
    if pairs is None:
        sampled: List[Tuple[int, int]] = []
        while len(sampled) < num_samples:
            s, t = rng.choice(len(candidates), size=2)
            if s != t:
                sampled.append((candidates[int(s)], candidates[int(t)]))
        pairs = sampled
    for s, t in pairs:
        results.append(count_disjoint_paths(topology, s, t, max_len))
    return np.asarray(results, dtype=np.int64)
