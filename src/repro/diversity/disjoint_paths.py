"""Length-limited counts of edge-disjoint paths (the paper's CDP measure, §IV-B1).

``c_l(A, B)`` is defined as the smallest number of edges whose removal disconnects
every path of length at most ``l`` from the router set ``A`` to the router set ``B``.
Exact computation of maximum length-bounded disjoint path sets is NP-hard for
``l >= 4``, so — exactly like the paper — we use a Ford–Fulkerson-flavoured greedy
heuristic: repeatedly find a path of length at most ``l`` (shortest first, via BFS),
remove its edges, and count how many paths were removed before ``h_l(A) ∩ B`` becomes
empty.  The result is a lower bound that is tight for the regimes of interest (it
equals the true value whenever shortest augmenting paths do not interfere, which holds
for small ``l``).

This module is a thin topology-level wrapper over the *batched* greedy kernel in
:mod:`repro.kernels.disjoint`: the Figure 7 distribution runs all sampled pairs
through one vectorized call, and the per-pair/per-set entry points run as
single-item batches.  The scalar search the repository previously used lives on as
:func:`repro.kernels.reference.greedy_disjoint_paths_python`, and the equivalence
suite pins the kernel against it pair-for-pair.  Pruning bounds (distances to the
target set in the unmutated topology, served by the shared path cache) are handed to
the kernel; they provably never change results.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.cache import kernels_for
from repro.kernels.disjoint import batch_disjoint_paths
from repro.topologies.base import Topology

Edge = Tuple[int, int]


def count_disjoint_paths_sets(topology: Topology, sources: Iterable[int],
                              targets: Iterable[int], max_len: int,
                              return_paths: bool = False):
    """Greedy count of edge-disjoint paths of length <= ``max_len`` from A to B.

    Mirrors the paper's pruned Ford–Fulkerson variant: repeatedly remove the edges of a
    shortest qualifying path until no path of length at most ``max_len`` remains.

    Parameters
    ----------
    topology:
        Router graph.
    sources, targets:
        Router sets ``A`` and ``B``.  Routers present in both sets yield an (ignored)
        zero-length path and do not contribute to the count.
    max_len:
        Maximum number of hops ``l``.
    return_paths:
        If True return ``(count, paths)`` with the concrete vertex paths found.
    """
    src = set(int(s) for s in sources)
    dst = set(int(t) for t in targets)
    if not src or not dst:
        raise ValueError("source and target sets must be non-empty")
    if max_len < 1:
        raise ValueError("max_len must be >= 1")
    overlap = src & dst
    # A router in both sets constitutes an unremovable 0-length connection; the paper's
    # definition only considers designated distinct routers, so we simply skip them.
    effective_src = src - overlap if src - overlap else src
    effective_dst = dst - overlap if dst - overlap else dst
    if effective_src & effective_dst:
        return (0, []) if return_paths else 0
    # Lower bounds on the hop distance to the target set, from the shared CSR cache.
    # Removing edges only increases distances, so these bounds stay admissible across
    # the greedy iterations; pairs farther apart than max_len terminate immediately.
    kernels = kernels_for(topology)
    if len(effective_dst) == 1:
        target_distance = kernels.distances_from(next(iter(effective_dst)))
    else:
        target_distance = kernels.multi_source_distances(sorted(effective_dst))
    best = min((int(target_distance[s]) for s in effective_src
                if target_distance[s] >= 0), default=-1)
    if best < 0 or best > max_len:
        return (0, []) if return_paths else 0
    item = [(sorted(effective_src), sorted(effective_dst))]
    bounds = np.asarray(target_distance)[None, :]
    if return_paths:
        counts, paths = batch_disjoint_paths(kernels.csr, item, max_len,
                                             bounds=bounds, return_paths=True)
        return int(counts[0]), paths[0]
    counts = batch_disjoint_paths(kernels.csr, item, max_len, bounds=bounds)
    return int(counts[0])


def count_disjoint_paths(topology: Topology, source: int, target: int, max_len: int,
                         return_paths: bool = False):
    """``c_l({s}, {t})`` — disjoint path count between two routers (see module docs)."""
    if source == target:
        raise ValueError("source and target must differ")
    return count_disjoint_paths_sets(topology, [source], [target], max_len,
                                     return_paths=return_paths)


def count_disjoint_paths_pairs(topology: Topology,
                               pairs: Sequence[Tuple[int, int]],
                               max_len: int) -> np.ndarray:
    """``c_l(s, t)`` for many router pairs in one batched kernel call.

    All pairs advance through the greedy search simultaneously (one vectorized BFS
    sweep per level across the whole batch); returns one count per pair, identical
    to calling :func:`count_disjoint_paths` pair by pair.
    """
    if max_len < 1:
        raise ValueError("max_len must be >= 1")
    pair_arr = np.asarray(list(pairs), dtype=np.int64).reshape(-1, 2)
    if pair_arr.size == 0:
        return np.zeros(0, dtype=np.int64)
    if (pair_arr[:, 0] == pair_arr[:, 1]).any():
        raise ValueError("source and target must differ")
    kernels = kernels_for(topology)
    source_rows, target_rows = kernels.pair_distance_rows(pair_arr)
    return batch_disjoint_paths(kernels.csr, pair_arr, max_len,
                                bounds=target_rows, source_bounds=source_rows)


def disjoint_path_distribution(topology: Topology, max_len: int, num_samples: int = 200,
                               rng: Optional[np.random.Generator] = None,
                               pairs: Optional[Sequence[Tuple[int, int]]] = None) -> np.ndarray:
    """Distribution of ``c_l(s, t)`` over sampled router pairs (paper Figure 7).

    Returns an array of counts, one per sampled pair.  Pairs are sampled uniformly at
    random from the endpoint-hosting routers (all routers except for fat trees, where
    only edge switches exchange traffic), unless an explicit ``pairs`` sequence is given.
    The whole sample runs as one batched kernel call.
    """
    rng = rng or np.random.default_rng(0)
    candidates = list(topology.endpoint_routers)
    if len(candidates) < 2:
        raise ValueError("need at least two endpoint-hosting routers")
    if pairs is None:
        sampled: List[Tuple[int, int]] = []
        while len(sampled) < num_samples:
            s, t = rng.choice(len(candidates), size=2)
            if s != t:
                sampled.append((candidates[int(s)], candidates[int(t)]))
        pairs = sampled
    return count_disjoint_paths_pairs(topology, pairs, max_len)
