"""Aggregate path-diversity metrics: TNL and the Table IV summary statistics.

* Total Network Load (TNL, §IV-B3): ``k' * Nr / d`` — an upper bound on the number of
  flows a topology can host without congestion.
* CDP/PI summaries (Table IV): mean and tail statistics of the disjoint-path counts and
  path-interference values, reported radix-invariantly as fractions of ``k'``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.diversity.disjoint_paths import disjoint_path_distribution
from repro.diversity.interference import interference_distribution
from repro.topologies.base import Topology


def total_network_load(topology: Topology, average_path_length: Optional[float] = None,
                       sample: Optional[int] = 64) -> float:
    """Total Network Load ``k' * Nr / d`` (paper §IV-B3).

    ``d`` defaults to the topology's measured average shortest-path length (sampled for
    large instances); pass ``average_path_length`` to evaluate TNL under a specific
    routing scheme's average path length.
    """
    d = average_path_length
    if d is None:
        d = topology.average_path_length(sample=sample)
    if d <= 0:
        raise ValueError("average path length must be positive")
    return topology.network_radix * topology.num_routers / d


@dataclass
class DiversitySummary:
    """Radix-invariant summary of a sampled diversity distribution (one Table IV cell group)."""

    metric: str
    distance: int
    mean: float
    tail_1pct: float
    tail_99pct: float
    tail_999pct: float
    mean_fraction_of_radix: float
    num_samples: int

    def as_row(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "distance": self.distance,
            "mean": round(self.mean, 3),
            "tail_1pct": round(self.tail_1pct, 3),
            "tail_99pct": round(self.tail_99pct, 3),
            "tail_999pct": round(self.tail_999pct, 3),
            "mean_fraction_of_radix": round(self.mean_fraction_of_radix, 3),
            "num_samples": self.num_samples,
        }


def _summary(metric: str, values: np.ndarray, distance: int, radix: int) -> DiversitySummary:
    values = np.asarray(values, dtype=float)
    return DiversitySummary(
        metric=metric,
        distance=distance,
        mean=float(values.mean()),
        tail_1pct=float(np.percentile(values, 1)),
        tail_99pct=float(np.percentile(values, 99)),
        tail_999pct=float(np.percentile(values, 99.9)),
        mean_fraction_of_radix=float(values.mean() / radix) if radix else float("nan"),
        num_samples=int(values.size),
    )


def cdp_summary(topology: Topology, distance: int, num_samples: int = 200,
                rng: Optional[np.random.Generator] = None) -> DiversitySummary:
    """Count-of-disjoint-paths summary at ``distance`` (Table IV "CDP" columns).

    The paper reports CDP as a fraction of router radix ``k'`` (``mean_fraction_of_radix``)
    plus the 1% tail.
    """
    values = disjoint_path_distribution(topology, distance, num_samples=num_samples, rng=rng)
    return _summary("CDP", values, distance, topology.network_radix)


def pi_summary(topology: Topology, distance: int, num_samples: int = 200,
               rng: Optional[np.random.Generator] = None) -> DiversitySummary:
    """Path-interference summary at ``distance`` (Table IV "PI" columns)."""
    values = interference_distribution(topology, distance, num_samples=num_samples, rng=rng)
    return _summary("PI", values, distance, topology.network_radix)


def choose_table4_distance(topology: Topology, num_samples: int = 100,
                           rng: Optional[np.random.Generator] = None,
                           required_tail_paths: int = 3, max_distance: int = 6) -> int:
    """Pick the Table IV evaluation distance d'.

    The paper chooses d' as the smallest distance at which the 99.9% "tail of demand"
    still finds at least ``required_tail_paths`` disjoint paths — i.e. the smallest l
    such that the 0.1% lower tail of ``c_l`` is >= 3.
    """
    rng = rng or np.random.default_rng(0)
    start = topology.diameter_hint or 1
    for distance in range(max(1, start), max_distance + 1):
        values = disjoint_path_distribution(topology, distance, num_samples=num_samples, rng=rng)
        if float(np.percentile(values, 0.1)) >= required_tail_paths:
            return distance
    return max_distance
