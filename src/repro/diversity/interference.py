"""Path Interference (PI) — the paper's novel overlap metric (§IV-B2, Figure 8).

Two communicating router pairs ``(a, b)`` and ``(c, d)`` *interfere* at distance ``l``
when their combined count of disjoint paths is smaller than the sum of the individual
counts:

    I_ac,bd(l) = c_l({a,c},{b}) + c_l({a,c},{d}) - c_l({a,c},{b,d})

A positive value quantifies the bandwidth lost to shared links when both pairs
communicate concurrently.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.diversity.disjoint_paths import count_disjoint_paths_sets
from repro.topologies.base import Topology


def path_interference(topology: Topology, a: int, b: int, c: int, d: int, max_len: int) -> int:
    """Path interference ``I_ac,bd`` at distance ``max_len`` (see module docstring)."""
    routers = {a, b, c, d}
    if len(routers) != 4:
        raise ValueError("a, b, c, d must be four distinct routers")
    to_b = count_disjoint_paths_sets(topology, [a, c], [b], max_len)
    to_d = count_disjoint_paths_sets(topology, [a, c], [d], max_len)
    combined = count_disjoint_paths_sets(topology, [a, c], [b, d], max_len)
    return int(to_b + to_d - combined)


def interference_distribution(topology: Topology, max_len: int, num_samples: int = 200,
                              rng: Optional[np.random.Generator] = None,
                              tuples: Optional[List[Tuple[int, int, int, int]]] = None) -> np.ndarray:
    """Sampled distribution of path interference at distance ``max_len`` (Figure 8).

    Router 4-tuples ``(a, b, c, d)`` are sampled uniformly at random (all four routers
    distinct) from the endpoint-hosting routers, unless explicit ``tuples`` are provided.
    """
    rng = rng or np.random.default_rng(0)
    candidates = np.asarray(topology.endpoint_routers)
    if candidates.size < 4:
        raise ValueError("need at least four endpoint-hosting routers to measure interference")
    samples: List[Tuple[int, int, int, int]]
    if tuples is not None:
        samples = list(tuples)
    else:
        samples = []
        while len(samples) < num_samples:
            picks = rng.choice(candidates, size=4, replace=False)
            samples.append(tuple(int(x) for x in picks))
    values = [path_interference(topology, *tpl, max_len=max_len) for tpl in samples]
    return np.asarray(values, dtype=np.int64)
