"""Flow-collision analysis (paper §IV-A, Figure 4).

Two flows *collide* when their communicating endpoint pairs occupy the same ordered
router pair (source endpoints on the same router, destination endpoints on the same
router).  Collisions depend only on the workload mapping, the concentration ``p`` and
the router count — not on the topology wiring — and they determine how many disjoint
paths per router pair a routing scheme must provide (the paper's answer: three).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Optional, Sequence, Tuple


from repro.topologies.base import Topology


def collisions_per_router_pair(topology: Topology,
                               endpoint_pairs: Iterable[Tuple[int, int]],
                               mapping: Optional[Sequence[int]] = None) -> Dict[Tuple[int, int], int]:
    """Number of flows per ordered router pair.

    Parameters
    ----------
    topology:
        The network (provides endpoint -> router attachment).
    endpoint_pairs:
        Communicating endpoint pairs ``(source endpoint, destination endpoint)``.
    mapping:
        Optional endpoint permutation: logical endpoint ``e`` runs on physical endpoint
        ``mapping[e]`` (the paper's randomized workload mapping).  Defaults to identity.

    Returns
    -------
    dict mapping ``(source router, destination router)`` to the number of flows between
    that router pair; pairs with source router == destination router are skipped (those
    flows never enter the network).
    """
    counts: Counter = Counter()
    for src, dst in endpoint_pairs:
        if mapping is not None:
            src = mapping[src]
            dst = mapping[dst]
        rs = topology.router_of_endpoint(int(src))
        rt = topology.router_of_endpoint(int(dst))
        if rs == rt:
            continue
        counts[(rs, rt)] += 1
    return dict(counts)


def collision_histogram(topology: Topology,
                        endpoint_pairs: Iterable[Tuple[int, int]],
                        mapping: Optional[Sequence[int]] = None) -> Dict[int, int]:
    """Histogram "number of colliding flows -> number of router pairs" (Figure 4).

    A router pair carrying ``m`` flows contributes one occurrence at multiplicity ``m``;
    router pairs carrying no flow are not reported (the paper's histogram starts at 1).
    """
    per_pair = collisions_per_router_pair(topology, endpoint_pairs, mapping)
    histogram: Counter = Counter(per_pair.values())
    return dict(sorted(histogram.items()))


def fraction_with_at_least(histogram: Dict[int, int], threshold: int) -> float:
    """Fraction of (flow-carrying) router pairs with at least ``threshold`` colliding flows."""
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    heavy = sum(count for multiplicity, count in histogram.items() if multiplicity >= threshold)
    return heavy / total


def max_collisions(histogram: Dict[int, int]) -> int:
    """Largest collision multiplicity observed."""
    return max(histogram) if histogram else 0


def required_disjoint_paths(topology: Topology,
                            endpoint_pairs_by_pattern: Dict[str, Sequence[Tuple[int, int]]],
                            mapping: Optional[Sequence[int]] = None,
                            tail_fraction: float = 0.01) -> int:
    """Disjoint paths per router pair needed to cover all but ``tail_fraction`` of collisions.

    This reproduces the paper's takeaway from §IV-A: over the considered workloads the
    multiplicity needed to cover 99% of router pairs is (at most) three for D >= 2
    topologies under random mapping.
    """
    worst = 1
    for pattern_pairs in endpoint_pairs_by_pattern.values():
        hist = collision_histogram(topology, pattern_pairs, mapping)
        if not hist:
            continue
        total = sum(hist.values())
        # smallest multiplicity m such that pairs with > m collisions are < tail_fraction
        cumulative = 0
        needed = max(hist)
        for multiplicity in sorted(hist):
            cumulative += hist[multiplicity]
            if (total - cumulative) / total < tail_fraction:
                needed = multiplicity
                break
        worst = max(worst, needed)
    return worst
